package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// On-disk layout of a log directory:
//
//	wal.meta            — fixed configuration payload, written once at creation
//	wal-<seq>.seg       — record segments; <seq> is the first record's
//	                      sequence number, 16 hex digits
//	ckpt-<seq>.ckpt     — snapshot checkpoints; <seq> is the last record the
//	                      checkpoint covers
//
// Every record is framed as
//
//	uint32 length | uint32 crc | uint64 seq | uint8 kind | payload
//
// with length counting the body (seq+kind+payload), crc a Castagnoli CRC32
// over the body, and seq a densely increasing record number starting at 1.
// Records never span segments; a segment rotates at the first flush after it
// exceeds the configured size. Meta and checkpoint files share the
// length|crc|payload framing (without seq/kind) and are written atomically
// (temp file, fsync, rename, directory fsync).

const (
	metaName   = "wal.meta"
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	ckptPrefix = "ckpt-"
	ckptSuffix = ".ckpt"

	frameHeaderLen = 8 // length + crc
	recordKindOps  = 1 // op-batch record
)

// Errors reported by the log. ErrCorrupt marks damage that torn-tail
// truncation cannot explain (a bad record with valid records after it);
// ErrCaughtUp and ErrTruncated belong to the tailing Reader.
var (
	ErrClosed    = errors.New("wal: log is closed")
	ErrCorrupt   = errors.New("wal: corrupt log")
	ErrExists    = errors.New("wal: log already exists")
	ErrNoLog     = errors.New("wal: no log in directory")
	ErrCaughtUp  = errors.New("wal: caught up with the log tail")
	ErrTruncated = errors.New("wal: records were truncated behind this reader")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures Open.
type Options struct {
	// SegmentBytes is the rotation threshold: a segment rotates at the first
	// flush after exceeding it. 0 means 4 MiB. Rotation happens only between
	// flushes, so a segment can overshoot by up to one flush batch.
	SegmentBytes int64
	// Meta is the configuration payload stored when the log is created; it is
	// returned verbatim by Log.Meta on every later Open and never changes.
	Meta []byte
	// MustCreate makes Open fail with ErrExists when the directory already
	// holds a log — the "fresh start" constructor semantics.
	MustCreate bool
	// MustExist makes Open fail with ErrNoLog when the directory holds no
	// log — the "recover" semantics.
	MustExist bool
	// OnRecord receives every durable record during Open, in sequence order,
	// after torn-tail truncation and checkpoint skipping. An error aborts the
	// Open. Nil skips replay delivery (records are still validated).
	OnRecord func(seq uint64, ops []Op) error
}

// Log is a single-writer append log. Append only buffers (a memcpy under the
// log's mutex, safe to call inside engine critical sections); durability
// happens in Sync/WaitDurable cycles that batch every buffered record into
// one write+fsync — group commit falls out of concurrent waiters sharing a
// cycle. A Log is safe for concurrent use.
type Log struct {
	dir      string
	segBytes int64
	meta     []byte
	created  bool

	// mu mostly covers memory (frame encoding into buf, sequence
	// accounting); the data fsync paths either wait on cond or drop mu
	// first, which is what lets Append run inside engine critical sections.
	// The one exception — found by dynlint — is segment rotation, which
	// opens the next segment and fsyncs the directory under mu so a flush
	// batch never spans segments; rotation is rare (segment-boundary only)
	// and mu is the hierarchy's bottom mutex, so holding it there costs
	// latency, never lock order. Hence may-block; see LOCKING.md.
	//
	//dynlint:lock-level 110 may-block
	mu       sync.Mutex
	cond     *sync.Cond
	buf      []byte // encoded frames not yet handed to the OS
	bufFirst uint64 // seq of the first frame in buf
	f        *os.File
	fileSize int64
	segFirst uint64 // first seq of the current segment (its name)
	hasSeg   bool
	nextSeq  uint64 // seq the next Append will take
	durable  uint64 // highest fsynced seq
	syncing  bool
	err      error // sticky IO error; the log is poisoned once set
	closed   bool

	ckptSeq  uint64       // seq the chain tip covers
	chain    []chainEntry // live checkpoint chain, base first
	replayed int
}

// Open opens (or creates) the log in dir, truncates a torn tail, verifies
// record framing and sequence continuity, and delivers every surviving
// record past the newest checkpoint to opts.OnRecord. The returned Log is
// positioned to append after the last durable record.
func Open(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		dir:      dir,
		segBytes: opts.SegmentBytes,
	}
	if l.segBytes <= 0 {
		l.segBytes = 4 << 20
	}
	l.cond = sync.NewCond(&l.mu)

	meta, metaErr := readFramedFile(filepath.Join(dir, metaName))
	switch {
	case metaErr == nil:
		if opts.MustCreate {
			return nil, fmt.Errorf("%w: %s (use Open to recover it)", ErrExists, dir)
		}
		l.meta = meta
	case os.IsNotExist(metaErr):
		if opts.MustExist {
			return nil, fmt.Errorf("%w: %s", ErrNoLog, dir)
		}
		segs, err := listSegments(dir)
		if err != nil {
			return nil, err
		}
		if len(segs) > 0 {
			return nil, fmt.Errorf("%w: segments present but %s is missing", ErrCorrupt, metaName)
		}
		if err := writeFramedFile(dir, metaName, opts.Meta); err != nil {
			return nil, err
		}
		l.meta = append([]byte(nil), opts.Meta...)
		l.created = true
	default:
		return nil, metaErr
	}

	// Leftover temp files are aborted atomic writes; they carry no state.
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) > 0 {
		for _, p := range tmps {
			os.Remove(p)
		}
	}

	if err := l.loadCheckpoint(); err != nil {
		return nil, err
	}
	if err := l.scan(opts.OnRecord); err != nil {
		return nil, err
	}
	return l, nil
}

// Created reports whether this Open created the log (no meta file existed).
func (l *Log) Created() bool { return l.created }

// Meta returns the configuration payload stored at creation.
func (l *Log) Meta() []byte { return l.meta }

// CheckpointSeq returns the sequence number the live checkpoint chain's tip
// covers (0 when no checkpoint exists).
func (l *Log) CheckpointSeq() uint64 { return l.ckptSeq }

// CheckpointPayloads returns the opaque engine payloads of the live
// checkpoint chain, base first (nil when no checkpoint exists). Restore
// applies the base and then each delta in order.
func (l *Log) CheckpointPayloads() [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return chainPayloads(l.chain)
}

// Chain returns the shape of the live checkpoint chain.
func (l *Log) Chain() ChainStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return statsOf(l.chain)
}

// Replayed returns how many records Open delivered to OnRecord.
func (l *Log) Replayed() int { return l.replayed }

// LastSeq returns the sequence number of the last appended record (whether
// or not it is durable yet); 0 when the log is empty.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// DurableSeq returns the highest sequence number known to be fsynced.
func (l *Log) DurableSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// loadCheckpoint reads the live checkpoint chain, if any. The newest-named
// checkpoint file is the chain's tip and defines the replay horizon.
func (l *Log) loadCheckpoint() error {
	chain, err := readChain(l.dir)
	if err != nil {
		return err
	}
	if len(chain) == 0 {
		return nil
	}
	l.chain = chain
	l.ckptSeq = chain[len(chain)-1].seq
	return nil
}

// scan validates the segment chain, truncates a torn tail, delivers records
// past the checkpoint, and positions the writer at the end.
func (l *Log) scan(onRecord func(uint64, []Op) error) error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	l.nextSeq = l.ckptSeq + 1
	if len(segs) == 0 {
		return nil
	}
	if segs[0].seq > l.ckptSeq+1 {
		return fmt.Errorf("%w: first segment starts at seq %d but the checkpoint covers only %d", ErrCorrupt, segs[0].seq, l.ckptSeq)
	}
	// Segments made fully obsolete by the checkpoint need no validation: the
	// next segment's first record bounds their content.
	first := 0
	for first+1 < len(segs) && segs[first+1].seq <= l.ckptSeq+1 {
		first++
	}
	expect := segs[first].seq
	for i := first; i < len(segs); i++ {
		seg := segs[i]
		if seg.seq != expect {
			return fmt.Errorf("%w: segment %s starts at seq %d, want %d", ErrCorrupt, seg.name, seg.seq, expect)
		}
		last := i == len(segs)-1
		end, next, err := l.scanSegment(seg, expect, last, onRecord)
		if err != nil {
			return err
		}
		expect = next
		if last {
			// Position the writer: reopen the tail segment for appending.
			f, err := os.OpenFile(filepath.Join(l.dir, seg.name), os.O_WRONLY, 0)
			if err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			if _, err := f.Seek(end, io.SeekStart); err != nil {
				f.Close()
				return fmt.Errorf("wal: %w", err)
			}
			l.f = f
			l.fileSize = end
			l.segFirst = seg.seq
			l.hasSeg = true
		}
	}
	l.nextSeq = expect
	l.durable = expect - 1
	return nil
}

// scanSegment walks one segment's records. In the last segment a record that
// fails to parse is a torn tail and the file is truncated (and fsynced) at
// the last good offset; anywhere else it is corruption. Returns the clean
// end offset and the next expected sequence number.
func (l *Log) scanSegment(seg segRef, expect uint64, last bool, onRecord func(uint64, []Op) error) (end int64, next uint64, _ error) {
	path := filepath.Join(l.dir, seg.name)
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var off int64
	for {
		seq, kind, payload, n, err := readFrameAt(f, off)
		if err == errFrameEOF {
			return off, expect, nil
		}
		if err != nil {
			if !last || validFrameAfterDamage(f, off) {
				return 0, 0, fmt.Errorf("%w: segment %s at offset %d: %v", ErrCorrupt, seg.name, off, err)
			}
			// Torn tail: everything before off is durable; drop the rest so
			// the log ends at a record boundary for every future reader.
			if err := os.Truncate(path, off); err != nil {
				return 0, 0, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			if err := syncPath(path); err != nil {
				return 0, 0, err
			}
			return off, expect, nil
		}
		if seq != expect {
			return 0, 0, fmt.Errorf("%w: segment %s at offset %d: record seq %d, want %d", ErrCorrupt, seg.name, off, seq, expect)
		}
		if kind != recordKindOps {
			return 0, 0, fmt.Errorf("%w: segment %s at offset %d: unknown record kind %d", ErrCorrupt, seg.name, off, kind)
		}
		if seq > l.ckptSeq && onRecord != nil {
			ops, err := DecodeOps(payload)
			if err != nil {
				if !last || validFrameAt(f, off+int64(n)) {
					return 0, 0, fmt.Errorf("%w: segment %s record %d: %v", ErrCorrupt, seg.name, seq, err)
				}
				// A framed record with a valid CRC but an undecodable payload
				// can only be written by a buggy encoder; in the tail position
				// it is indistinguishable in effect from a torn record, so
				// recovery salvages the prefix rather than refusing the log.
				if err := os.Truncate(path, off); err != nil {
					return 0, 0, fmt.Errorf("wal: truncating undecodable tail: %w", err)
				}
				if err := syncPath(path); err != nil {
					return 0, 0, err
				}
				return off, expect, nil
			}
			if err := onRecord(seq, ops); err != nil {
				return 0, 0, err
			}
			l.replayed++
		}
		expect = seq + 1
		off += int64(n)
	}
}

// Append encodes ops as one record and buffers it, returning the record's
// sequence number. It never blocks on IO: durability is a separate step
// (WaitDurable for per-commit fsync, a periodic Sync for group commit).
//
//dynlint:wal-append
func (l *Log) Append(ops []Op) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	seq := l.nextSeq
	l.nextSeq++
	if len(l.buf) == 0 {
		l.bufFirst = seq
	}
	l.buf = appendFrame(l.buf, seq, recordKindOps, ops)
	return seq, nil
}

// WaitDurable blocks until every record up to and including seq is fsynced,
// running the write+fsync cycle itself when no other goroutine is already on
// it — concurrent waiters batch into one fsync (group commit).
//
//dynlint:blocks
func (l *Log) WaitDurable(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waitDurableLocked(seq)
}

// Sync makes every appended record durable.
//
//dynlint:blocks
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waitDurableLocked(l.nextSeq - 1)
}

func (l *Log) waitDurableLocked(seq uint64) error {
	for {
		if l.durable >= seq {
			return nil
		}
		if l.err != nil {
			return l.err
		}
		if l.closed {
			return ErrClosed
		}
		if l.syncing {
			l.cond.Wait()
			continue
		}
		l.syncCycleLocked()
	}
}

// syncCycleLocked takes the buffered frames and writes+fsyncs them outside
// the mutex, so appends keep landing in the (fresh) buffer while the disk
// works — the group-commit batching. Rotation happens here, at flush
// boundaries, so a flush batch never spans segments. Caller holds l.mu with
// l.syncing false; returns with l.mu held.
func (l *Log) syncCycleLocked() {
	if l.f == nil || (l.fileSize >= l.segBytes && len(l.buf) > 0) {
		if err := l.rotateLocked(); err != nil {
			l.err = err
			l.cond.Broadcast()
			return
		}
	}
	l.syncing = true
	take := l.buf
	l.buf = nil
	upTo := l.nextSeq - 1
	f := l.f
	l.mu.Unlock()
	var err error
	if len(take) > 0 {
		_, err = f.Write(take)
	}
	if err == nil {
		err = f.Sync()
	}
	l.mu.Lock()
	l.syncing = false
	if err != nil {
		l.err = fmt.Errorf("wal: %w", err)
	} else {
		l.fileSize += int64(len(take))
		l.durable = upTo
	}
	l.cond.Broadcast()
}

// rotateLocked finishes the current segment and opens the next, named by the
// first sequence number it will hold. Caller holds l.mu, not syncing.
func (l *Log) rotateLocked() error {
	first := l.nextSeq
	if len(l.buf) > 0 {
		first = l.bufFirst
	}
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.f = nil
	}
	name := segName(first)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncPath(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.fileSize = 0
	l.segFirst = first
	l.hasSeg = true
	return nil
}

// WriteCheckpoint durably stores payload as a full base checkpoint covering
// every record up to and including seq, starting a fresh chain, then removes
// the checkpoints and segments it makes obsolete. The caller guarantees the
// payload reflects a state that has every record ≤ seq applied and none
// later.
//
//dynlint:blocks
func (l *Log) WriteCheckpoint(seq uint64, payload []byte) error {
	current, err := l.prepareCheckpoint(seq, false)
	if err != nil {
		return err
	}
	data := encodeCkptBase(payload)
	if err := writeFramedFile(l.dir, ckptName(seq), data); err != nil {
		return err
	}
	l.mu.Lock()
	l.ckptSeq = seq
	l.chain = []chainEntry{{
		name: ckptName(seq), seq: seq, kind: ckptKindBase,
		bytes: int64(len(data)), payload: append([]byte(nil), payload...),
	}}
	live := liveChainNames(l.chain)
	l.mu.Unlock()
	l.removeObsolete(seq, current, live)
	return nil
}

// WriteDeltaCheckpoint durably stores payload as a delta checkpoint covering
// records up to and including seq, extending the current chain tip. The
// caller guarantees the payload, composed onto its parent chain, reflects a
// state with every record ≤ seq applied and none later. A delta requires an
// existing chain and must advance the horizon (seq strictly beyond the tip:
// an equal seq would reuse the parent's file name and sever the chain).
//
//dynlint:blocks
func (l *Log) WriteDeltaCheckpoint(seq uint64, payload []byte) error {
	current, err := l.prepareCheckpoint(seq, true)
	if err != nil {
		return err
	}
	l.mu.Lock()
	parent := l.ckptSeq
	l.mu.Unlock()
	data := encodeCkptDelta(parent, payload)
	if err := writeFramedFile(l.dir, ckptName(seq), data); err != nil {
		return err
	}
	l.mu.Lock()
	l.ckptSeq = seq
	l.chain = append(l.chain, chainEntry{
		name: ckptName(seq), seq: seq, parent: parent, kind: ckptKindDelta,
		bytes: int64(len(data)), payload: append([]byte(nil), payload...),
	})
	live := liveChainNames(l.chain)
	l.mu.Unlock()
	l.removeObsolete(seq, current, live)
	return nil
}

// prepareCheckpoint validates a checkpoint request and flushes the log: the
// records the checkpoint covers must not outlive it in buffered form only,
// so a crash right after the segment trim cannot lose the suffix the
// checkpoint does not cover. Returns the current segment's name (protected
// from trimming).
func (l *Log) prepareCheckpoint(seq uint64, delta bool) (current string, _ error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return "", ErrClosed
	}
	if seq > l.nextSeq-1 {
		return "", fmt.Errorf("wal: checkpoint seq %d beyond last record %d", seq, l.nextSeq-1)
	}
	if delta {
		if len(l.chain) == 0 {
			return "", fmt.Errorf("wal: delta checkpoint at seq %d without a base to extend", seq)
		}
		if seq <= l.ckptSeq {
			return "", fmt.Errorf("wal: delta checkpoint seq %d not beyond chain tip %d", seq, l.ckptSeq)
		}
	} else if seq < l.ckptSeq {
		return "", fmt.Errorf("wal: checkpoint seq %d behind existing checkpoint %d", seq, l.ckptSeq)
	}
	if err := l.waitDurableLocked(l.nextSeq - 1); err != nil {
		return "", err
	}
	if l.hasSeg {
		current = segName(l.segFirst)
	}
	return current, nil
}

func liveChainNames(chain []chainEntry) map[string]bool {
	live := make(map[string]bool, len(chain))
	for _, e := range chain {
		live[e.name] = true
	}
	return live
}

// removeObsolete trims checkpoint files off the live chain and segments the
// chain tip makes fully obsolete. Cleanup is best-effort: a failure leaves
// extra files, never lost state.
func (l *Log) removeObsolete(seq uint64, current string, live map[string]bool) {
	if names, err := listCheckpoints(l.dir); err == nil {
		for _, c := range names {
			if !live[c.name] {
				os.Remove(filepath.Join(l.dir, c.name))
			}
		}
	}
	if segs, err := listSegments(l.dir); err == nil {
		for i := 0; i+1 < len(segs); i++ {
			if segs[i+1].seq <= seq+1 && segs[i].name != current {
				os.Remove(filepath.Join(l.dir, segs[i].name))
			}
		}
	}
}

// SegmentCount returns how many segment files the log currently holds.
func (l *Log) SegmentCount() int {
	segs, err := listSegments(l.dir)
	if err != nil {
		return 0
	}
	return len(segs)
}

// Close flushes and fsyncs every appended record, then closes the log.
// Further appends fail with ErrClosed. Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.waitDurableLocked(l.nextSeq - 1)
	l.closed = true
	f := l.f
	l.f = nil
	l.cond.Broadcast()
	l.mu.Unlock()
	if f != nil {
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("wal: %w", cerr)
		}
	}
	return err
}

// Record framing.

// maxBody bounds a declared record body so a corrupt length cannot demand a
// huge allocation.
const maxBody = 64 << 20

// errFrameEOF marks a clean end: zero bytes where the next frame would start.
var errFrameEOF = errors.New("wal: end of records")

// errFramePartial marks an incomplete or damaged frame — a torn tail when it
// is at the physical end of the log, corruption anywhere else. The tailing
// reader treats it as "not yet visible" and retries.
var errFramePartial = errors.New("wal: partial or damaged record")

// appendFrame appends one framed record to dst.
func appendFrame(dst []byte, seq uint64, kind byte, ops []Op) []byte {
	bodyStart := len(dst) + frameHeaderLen
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // length+crc placeholders
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = append(dst, kind)
	dst = AppendOps(dst, ops)
	body := dst[bodyStart:]
	binary.LittleEndian.PutUint32(dst[bodyStart-8:], uint32(len(body)))
	binary.LittleEndian.PutUint32(dst[bodyStart-4:], crc32.Checksum(body, castagnoli))
	return dst
}

// validFrameAfterDamage reports whether a complete, checksum-valid frame
// follows the damaged frame at off. A torn tail can only be the *last* thing
// in the log — if good records sit past the damage, truncating would replay a
// gapped history, so recovery must refuse the log instead. The next boundary
// is only findable when the damaged frame's length header survived; when the
// header itself is garbage any later record is unreachable by every reader,
// and salvaging the prefix is the only option left.
func validFrameAfterDamage(f *os.File, off int64) bool {
	var hdr [frameHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return false
	}
	length := binary.LittleEndian.Uint32(hdr[:4])
	if length < 9 || length > maxBody {
		return false
	}
	return validFrameAt(f, off+frameHeaderLen+int64(length))
}

// validFrameAt reports whether a complete, checksum-valid frame starts at off.
func validFrameAt(f *os.File, off int64) bool {
	_, _, _, _, err := readFrameAt(f, off)
	return err == nil
}

// readFrameAt reads and verifies the frame at offset off. It returns
// errFrameEOF at a clean end and errFramePartial for anything that cannot be
// parsed as a complete, checksummed frame.
func readFrameAt(f *os.File, off int64) (seq uint64, kind byte, payload []byte, n int, _ error) {
	var hdr [frameHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		if err == io.EOF {
			return 0, 0, nil, 0, errFrameEOF
		}
		if err == io.ErrUnexpectedEOF {
			return 0, 0, nil, 0, errFramePartial
		}
		return 0, 0, nil, 0, err
	}
	length := binary.LittleEndian.Uint32(hdr[:4])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if length < 9 || length > maxBody {
		return 0, 0, nil, 0, errFramePartial
	}
	body := make([]byte, length)
	if _, err := f.ReadAt(body, off+frameHeaderLen); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, 0, nil, 0, errFramePartial
		}
		return 0, 0, nil, 0, err
	}
	if crc32.Checksum(body, castagnoli) != crc {
		return 0, 0, nil, 0, errFramePartial
	}
	seq = binary.LittleEndian.Uint64(body[:8])
	return seq, body[8], body[9:], frameHeaderLen + int(length), nil
}

// File helpers.

type segRef struct {
	name string
	seq  uint64
}

func segName(first uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix)
}

func ckptName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, seq, ckptSuffix)
}

func listByAffix(dir, prefix, suffix string) ([]segRef, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []segRef
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		hexs := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		seq, err := strconv.ParseUint(hexs, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: unparseable file name %s", ErrCorrupt, name)
		}
		out = append(out, segRef{name, seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

func listSegments(dir string) ([]segRef, error)    { return listByAffix(dir, segPrefix, segSuffix) }
func listCheckpoints(dir string) ([]segRef, error) { return listByAffix(dir, ckptPrefix, ckptSuffix) }

// readFramedFile reads a length|crc|payload file (meta, checkpoints).
func readFramedFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < frameHeaderLen {
		return nil, fmt.Errorf("%w: %s too short", ErrCorrupt, filepath.Base(path))
	}
	length := binary.LittleEndian.Uint32(data[:4])
	crc := binary.LittleEndian.Uint32(data[4:8])
	if uint64(length) != uint64(len(data)-frameHeaderLen) {
		return nil, fmt.Errorf("%w: %s length mismatch", ErrCorrupt, filepath.Base(path))
	}
	payload := data[frameHeaderLen:]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, fmt.Errorf("%w: %s checksum mismatch", ErrCorrupt, filepath.Base(path))
	}
	return payload, nil
}

// writeFramedFile atomically writes a length|crc|payload file.
func writeFramedFile(dir, name string, payload []byte) error {
	buf := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, payload...)
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	} else {
		f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	return syncPath(dir)
}

// syncPath fsyncs a file or directory by path.
func syncPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}
