// Package rtree implements a dynamic R-tree over points (Guttman, SIGMOD
// 1984 — reference [12] of the paper) with quadratic-cost node splitting and
// the condense-tree deletion algorithm.
//
// In the reproduction it serves as the spatial index the IncDBSCAN baseline
// of Ester et al. [8] was originally built on: Section 3 of the paper
// reviews IncDBSCAN as fetching the ε-neighborhood "through a range query
// [3,12]". The default IncDBSCAN configuration in this repository answers
// those range queries from the shared grid (which is faster — a conservative
// choice that only strengthens the baseline); this package provides the
// historically faithful alternative, selectable in internal/core and
// compared in the ablation benchmarks.
package rtree

import (
	"math"

	"dyndbscan/internal/geom"
)

const (
	maxEntries = 16 // M: node capacity
	minEntries = 6  // m: minimum fill (≈ M·0.4, Guttman's recommendation)
)

// Tree is a dynamic R-tree over points in R^dims carrying int64 ids.
type Tree struct {
	dims   int
	root   *node
	height int // leaf level = 0
	size   int
}

type rect struct {
	lo, hi [geom.MaxDims]float64
}

type entry struct {
	mbr   rect
	child *node // internal entries
	id    int64 // leaf entries
	pt    geom.Point
}

type node struct {
	leaf    bool
	entries []entry
}

// New returns an empty tree over R^dims.
func New(dims int) *Tree {
	return &Tree{dims: dims, root: &node{leaf: true}}
}

// Len returns the number of stored points.
func (t *Tree) Len() int { return t.size }

func (t *Tree) pointRect(pt geom.Point) rect {
	var r rect
	for i := 0; i < t.dims; i++ {
		r.lo[i] = pt[i]
		r.hi[i] = pt[i]
	}
	return r
}

func (t *Tree) enlarge(r *rect, s rect) {
	for i := 0; i < t.dims; i++ {
		if s.lo[i] < r.lo[i] {
			r.lo[i] = s.lo[i]
		}
		if s.hi[i] > r.hi[i] {
			r.hi[i] = s.hi[i]
		}
	}
}

func (t *Tree) area(r rect) float64 {
	a := 1.0
	for i := 0; i < t.dims; i++ {
		a *= r.hi[i] - r.lo[i]
	}
	return a
}

// enlargement returns the area growth of r if extended to cover s.
func (t *Tree) enlargement(r, s rect) float64 {
	grown := r
	t.enlarge(&grown, s)
	return t.area(grown) - t.area(r)
}

func (t *Tree) minDistSq(r rect, q geom.Point) float64 {
	var sum float64
	for i := 0; i < t.dims; i++ {
		switch {
		case q[i] < r.lo[i]:
			d := r.lo[i] - q[i]
			sum += d * d
		case q[i] > r.hi[i]:
			d := q[i] - r.hi[i]
			sum += d * d
		}
	}
	return sum
}

// Insert adds a point under id.
func (t *Tree) Insert(id int64, pt geom.Point) {
	e := entry{mbr: t.pointRect(pt), id: id, pt: pt}
	split := t.insertAt(t.root, e, t.height)
	if split != nil {
		// Root split: grow the tree.
		old := t.root
		t.root = &node{entries: []entry{
			{mbr: t.mbrOf(old), child: old},
			{mbr: t.mbrOf(split), child: split},
		}}
		t.height++
	}
	t.size++
}

// insertAt descends to the target level and returns a split sibling when the
// node overflowed.
func (t *Tree) insertAt(n *node, e entry, level int) *node {
	if level == 0 {
		n.entries = append(n.entries, e)
		if len(n.entries) > maxEntries {
			return t.splitNode(n)
		}
		return nil
	}
	// ChooseSubtree: least enlargement, ties by smallest area.
	best := -1
	bestGrowth, bestArea := math.Inf(1), math.Inf(1)
	for i := range n.entries {
		g := t.enlargement(n.entries[i].mbr, e.mbr)
		a := t.area(n.entries[i].mbr)
		if g < bestGrowth || (g == bestGrowth && a < bestArea) {
			best, bestGrowth, bestArea = i, g, a
		}
	}
	child := n.entries[best].child
	split := t.insertAt(child, e, level-1)
	n.entries[best].mbr = t.mbrOf(child)
	if split != nil {
		n.entries = append(n.entries, entry{mbr: t.mbrOf(split), child: split})
		if len(n.entries) > maxEntries {
			return t.splitNode(n)
		}
	}
	return nil
}

func (t *Tree) mbrOf(n *node) rect {
	r := n.entries[0].mbr
	for _, e := range n.entries[1:] {
		t.enlarge(&r, e.mbr)
	}
	return r
}

// splitNode performs Guttman's quadratic split, moving roughly half of n's
// entries into a returned sibling.
func (t *Tree) splitNode(n *node) *node {
	entries := n.entries
	// PickSeeds: the pair wasting the most area together.
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			combined := entries[i].mbr
			t.enlarge(&combined, entries[j].mbr)
			waste := t.area(combined) - t.area(entries[i].mbr) - t.area(entries[j].mbr)
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	groupA := []entry{entries[seedA]}
	groupB := []entry{entries[seedB]}
	mbrA, mbrB := entries[seedA].mbr, entries[seedB].mbr
	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// If one group must take everything to reach minEntries, do so.
		if len(groupA)+len(rest) == minEntries {
			groupA = append(groupA, rest...)
			for _, e := range rest {
				t.enlarge(&mbrA, e.mbr)
			}
			break
		}
		if len(groupB)+len(rest) == minEntries {
			groupB = append(groupB, rest...)
			for _, e := range rest {
				t.enlarge(&mbrB, e.mbr)
			}
			break
		}
		// PickNext: entry with the greatest preference for one group.
		bestIdx, bestDiff := 0, -1.0
		var bestToA bool
		for i, e := range rest {
			dA := t.enlargement(mbrA, e.mbr)
			dB := t.enlargement(mbrB, e.mbr)
			diff := math.Abs(dA - dB)
			if diff > bestDiff {
				bestDiff, bestIdx = diff, i
				bestToA = dA < dB || (dA == dB && t.area(mbrA) < t.area(mbrB))
			}
		}
		e := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		if bestToA {
			groupA = append(groupA, e)
			t.enlarge(&mbrA, e.mbr)
		} else {
			groupB = append(groupB, e)
			t.enlarge(&mbrB, e.mbr)
		}
	}
	n.entries = groupA
	return &node{leaf: n.leaf, entries: groupB}
}

// Delete removes the point stored under (id, pt). It panics when absent,
// which indicates caller bookkeeping corruption.
func (t *Tree) Delete(id int64, pt geom.Point) {
	var orphans []orphan
	if !t.deleteAt(t.root, id, pt, t.height, &orphans) {
		panic("rtree: delete of unknown point")
	}
	t.size--
	// Condense: reinsert entries of underfull nodes at their former level.
	for _, o := range orphans {
		for _, e := range o.n.entries {
			if o.level == 0 {
				t.reinsertEntry(e, 0)
			} else {
				t.reinsertEntry(e, o.level)
			}
		}
	}
	// Shrink the root while it has a single internal child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.height--
	}
	if t.size == 0 && !t.root.leaf {
		t.root = &node{leaf: true}
		t.height = 0
	}
}

type orphan struct {
	n     *node
	level int
}

func (t *Tree) deleteAt(n *node, id int64, pt geom.Point, level int, orphans *[]orphan) bool {
	if level == 0 {
		for i, e := range n.entries {
			if e.id == id && geom.Equal(e.pt, pt, t.dims) {
				n.entries[i] = n.entries[len(n.entries)-1]
				n.entries = n.entries[:len(n.entries)-1]
				return true
			}
		}
		return false
	}
	for i := range n.entries {
		e := &n.entries[i]
		if t.minDistSq(e.mbr, pt) > 0 {
			continue
		}
		if !t.deleteAt(e.child, id, pt, level-1, orphans) {
			continue
		}
		if len(e.child.entries) < minEntries {
			*orphans = append(*orphans, orphan{n: e.child, level: level - 1})
			n.entries[i] = n.entries[len(n.entries)-1]
			n.entries = n.entries[:len(n.entries)-1]
		} else {
			e.mbr = t.mbrOf(e.child)
		}
		return true
	}
	return false
}

// reinsertEntry inserts an entry (leaf point or subtree root) at the given
// level, growing the root on overflow.
func (t *Tree) reinsertEntry(e entry, level int) {
	if t.height < level {
		// Cannot happen with condense-tree ordering, but guard anyway.
		panic("rtree: reinsertion above the root")
	}
	split := t.insertAt(t.root, e, t.height-level)
	if split != nil {
		old := t.root
		t.root = &node{entries: []entry{
			{mbr: t.mbrOf(old), child: old},
			{mbr: t.mbrOf(split), child: split},
		}}
		t.height++
	}
}

// SearchBall invokes fn for every point within distance r of q; iteration
// stops early when fn returns false.
func (t *Tree) SearchBall(q geom.Point, r float64, fn func(id int64, pt geom.Point) bool) {
	t.searchBall(t.root, q, r*r, fn)
}

func (t *Tree) searchBall(n *node, q geom.Point, rsq float64, fn func(int64, geom.Point) bool) bool {
	if n.leaf {
		for _, e := range n.entries {
			if geom.DistSq(q, e.pt, t.dims) <= rsq {
				if !fn(e.id, e.pt) {
					return false
				}
			}
		}
		return true
	}
	for _, e := range n.entries {
		if t.minDistSq(e.mbr, q) > rsq {
			continue
		}
		if !t.searchBall(e.child, q, rsq, fn) {
			return false
		}
	}
	return true
}
