package rtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dyndbscan/internal/geom"
)

func randPt(rng *rand.Rand, d int, scale float64) geom.Point {
	p := make(geom.Point, d)
	for i := 0; i < d; i++ {
		p[i] = (rng.Float64()*2 - 1) * scale
	}
	return p
}

func ballNaive(pts map[int64]geom.Point, d int, q geom.Point, r float64) []int64 {
	var out []int64
	for id, p := range pts {
		if geom.DistSq(q, p, d) <= r*r {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func ballTree(t *Tree, q geom.Point, r float64) []int64 {
	var out []int64
	t.SearchBall(q, r, func(id int64, _ geom.Point) bool {
		out = append(out, id)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestAgainstNaive: random insert/delete/search churn vs brute force across
// dimensions — splits, condense-tree reinsertion, and root shrinking are all
// exercised by the volume.
func TestAgainstNaive(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5, 7} {
		d := d
		t.Run(fmt.Sprintf("d%d", d), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(d) * 17))
			tr := New(d)
			model := make(map[int64]geom.Point)
			next := int64(0)
			for op := 0; op < 4000; op++ {
				switch r := rng.Float64(); {
				case r < 0.55:
					p := randPt(rng, d, 40)
					tr.Insert(next, p)
					model[next] = p
					next++
				case r < 0.8 && len(model) > 0:
					for id, p := range model {
						tr.Delete(id, p)
						delete(model, id)
						break
					}
				default:
					q := randPt(rng, d, 45)
					r := rng.Float64() * 25
					got := ballTree(tr, q, r)
					want := ballNaive(model, d, q, r)
					if len(got) != len(want) {
						t.Fatalf("op %d: ball got %d ids, want %d", op, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("op %d: result %d: %d vs %d", op, i, got[i], want[i])
						}
					}
				}
				if tr.Len() != len(model) {
					t.Fatalf("op %d: Len=%d want %d", op, tr.Len(), len(model))
				}
			}
		})
	}
}

// TestDrainRefill empties a populated tree completely and reuses it.
func TestDrainRefill(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := New(2)
	pts := make(map[int64]geom.Point)
	for round := 0; round < 3; round++ {
		for i := 0; i < 800; i++ {
			id := int64(round*1000 + i)
			p := randPt(rng, 2, 30)
			tr.Insert(id, p)
			pts[id] = p
		}
		for id, p := range pts {
			tr.Delete(id, p)
			delete(pts, id)
		}
		if tr.Len() != 0 {
			t.Fatalf("round %d: tree not empty", round)
		}
	}
}

// TestDuplicatePositions: many points at the same location must all be
// stored and individually deletable.
func TestDuplicatePositions(t *testing.T) {
	tr := New(3)
	p := geom.Point{1, 2, 3}
	const n = 200
	for i := int64(0); i < n; i++ {
		tr.Insert(i, p)
	}
	if got := len(ballTree(tr, p, 0.1)); got != n {
		t.Fatalf("duplicates found %d, want %d", got, n)
	}
	for i := int64(0); i < n; i++ {
		tr.Delete(i, p)
	}
	if tr.Len() != 0 {
		t.Fatal("duplicate deletion failed")
	}
}

func TestDeleteUnknownPanics(t *testing.T) {
	tr := New(2)
	tr.Insert(1, geom.Point{0, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Delete(9, geom.Point{5, 5})
}

func TestEarlyStop(t *testing.T) {
	tr := New(2)
	for i := int64(0); i < 50; i++ {
		tr.Insert(i, geom.Point{float64(i) * 0.01, 0})
	}
	calls := 0
	tr.SearchBall(geom.Point{0, 0}, 10, func(int64, geom.Point) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop visited %d, want 1", calls)
	}
}

// TestQuickSearchSound: whatever SearchBall reports is within r and present;
// everything within r is reported.
func TestQuickSearchSound(t *testing.T) {
	f := func(coords []float64, qx, qy, rr float64) bool {
		tr := New(2)
		model := make(map[int64]geom.Point)
		for i := 0; i+1 < len(coords); i += 2 {
			id := int64(i / 2)
			p := geom.Point{fold(coords[i]), fold(coords[i+1])}
			tr.Insert(id, p)
			model[id] = p
		}
		q := geom.Point{fold(qx), fold(qy)}
		r := fold(rr)
		if r < 0 {
			r = -r
		}
		got := ballTree(tr, q, r)
		want := ballNaive(model, 2, q, r)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func fold(x float64) float64 {
	if x != x || x > 1e15 || x < -1e15 {
		return 0
	}
	for x > 100 || x < -100 {
		x /= 16
	}
	return x
}
