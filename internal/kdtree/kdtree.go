// Package kdtree provides a dynamic kd-tree over points in R^d with integer
// payload ids. In the reproduction it instantiates the paper's per-cell
// "emptiness structure" (Section 4.2): the banded query Probe(q, rLow, rHigh)
// implements the 1/0/don't-care contract of the ρ-approximate ε-emptiness
// query — it is guaranteed to return a point when one lies within rLow of q,
// never returns a point farther than rHigh, and may answer either way in
// between. The paper plugs in the ANN structure of Arya et al. [2] (or Chan's
// exact structure in 2D); the banded kd-tree search satisfies the identical
// contract, with rLow = ε and rHigh = (1+ρ)ε, degenerating to an exact
// structure when ρ = 0.
//
// The tree supports insertion and deletion (lazy, with periodic rebuilds) and
// exact nearest-neighbor queries used by tests.
package kdtree

import (
	"dyndbscan/internal/geom"
)

// scanThreshold is the live size under which queries fall back to a linear
// scan over the id map; for tiny sets the scan beats tree traversal and, more
// importantly, is trivially correct regardless of tree shape.
const scanThreshold = 12

// Tree is a dynamic kd-tree. The zero value is not usable; call New.
type Tree struct {
	dims  int
	root  *node
	nodes map[int64]*node

	dead       int
	sinceBuild int
}

type node struct {
	pt          geom.Point
	id          int64
	dead        bool
	axis        int8
	left, right *node
	lo, hi      [geom.MaxDims]float64 // bounds of the whole subtree
}

// New returns an empty tree over points in R^dims.
func New(dims int) *Tree {
	return &Tree{dims: dims, nodes: make(map[int64]*node)}
}

// Len returns the number of live points.
func (t *Tree) Len() int { return len(t.nodes) }

// Insert adds the point with the given id. Inserting an id that is already
// present panics: ids identify points and the caller owns their uniqueness.
func (t *Tree) Insert(id int64, pt geom.Point) {
	if _, ok := t.nodes[id]; ok {
		panic("kdtree: duplicate id")
	}
	n := &node{pt: pt, id: id}
	setBounds(n, t.dims)
	t.nodes[id] = n
	t.insertNode(n)
	t.sinceBuild++
	t.maybeRebuild()
}

// Delete removes the point with the given id; it panics if absent, which
// indicates a bookkeeping bug in the caller.
func (t *Tree) Delete(id int64) {
	n, ok := t.nodes[id]
	if !ok {
		panic("kdtree: delete of unknown id")
	}
	delete(t.nodes, id)
	n.dead = true
	t.dead++
	t.maybeRebuild()
}

// Has reports whether id is present.
func (t *Tree) Has(id int64) bool {
	_, ok := t.nodes[id]
	return ok
}

// ForEach calls fn on every live (id, point) pair until fn returns false.
func (t *Tree) ForEach(fn func(id int64, pt geom.Point) bool) {
	for id, n := range t.nodes {
		if !fn(id, n.pt) {
			return
		}
	}
}

// Probe implements the banded emptiness query. It returns some point within
// rHigh of q if one lies within rLow of q; when no point lies within rLow it
// may return a point in the (rLow, rHigh] band or report absence — both are
// legal under the paper's don't-care semantics. It never returns a point
// farther than rHigh.
func (t *Tree) Probe(q geom.Point, rLow, rHigh float64) (int64, geom.Point, bool) {
	if len(t.nodes) == 0 {
		return 0, nil, false
	}
	if len(t.nodes) <= scanThreshold {
		return t.scanProbe(q, rHigh)
	}
	lowSq := rLow * rLow
	highSq := rHigh * rHigh
	if n := t.probeNode(t.root, q, lowSq, highSq); n != nil {
		return n.id, n.pt, true
	}
	return 0, nil, false
}

func (t *Tree) scanProbe(q geom.Point, rHigh float64) (int64, geom.Point, bool) {
	highSq := rHigh * rHigh
	for id, n := range t.nodes {
		if geom.DistSq(q, n.pt, t.dims) <= highSq {
			return id, n.pt, true
		}
	}
	return 0, nil, false
}

// probeNode prunes by rLow (sound: only don't-care points can be skipped) and
// accepts by rHigh (the first point found within rHigh is returned).
func (t *Tree) probeNode(n *node, q geom.Point, lowSq, highSq float64) *node {
	if n == nil || t.minDistSqToBounds(q, n) > lowSq {
		return nil
	}
	if !n.dead && geom.DistSq(q, n.pt, t.dims) <= highSq {
		return n
	}
	if r := t.probeNode(n.left, q, lowSq, highSq); r != nil {
		return r
	}
	return t.probeNode(n.right, q, lowSq, highSq)
}

// Nearest returns the exact nearest live point to q, or ok=false when the
// tree is empty. Used by tests and by exact configurations.
func (t *Tree) Nearest(q geom.Point) (int64, geom.Point, float64, bool) {
	if len(t.nodes) == 0 {
		return 0, nil, 0, false
	}
	var best *node
	bestSq := -1.0
	if len(t.nodes) <= scanThreshold {
		for _, n := range t.nodes {
			if d := geom.DistSq(q, n.pt, t.dims); bestSq < 0 || d < bestSq {
				best, bestSq = n, d
			}
		}
	} else {
		t.nearestNode(t.root, q, &best, &bestSq)
	}
	return best.id, best.pt, bestSq, true
}

func (t *Tree) nearestNode(n *node, q geom.Point, best **node, bestSq *float64) {
	if n == nil {
		return
	}
	if *bestSq >= 0 && t.minDistSqToBounds(q, n) > *bestSq {
		return
	}
	if !n.dead {
		if d := geom.DistSq(q, n.pt, t.dims); *bestSq < 0 || d < *bestSq {
			*best, *bestSq = n, d
		}
	}
	// Descend toward q first so bestSq shrinks quickly.
	first, second := n.left, n.right
	if q[n.axis] >= n.pt[n.axis] {
		first, second = second, first
	}
	t.nearestNode(first, q, best, bestSq)
	t.nearestNode(second, q, best, bestSq)
}

func (t *Tree) minDistSqToBounds(q geom.Point, n *node) float64 {
	var s float64
	for i := 0; i < t.dims; i++ {
		switch {
		case q[i] < n.lo[i]:
			d := n.lo[i] - q[i]
			s += d * d
		case q[i] > n.hi[i]:
			d := q[i] - n.hi[i]
			s += d * d
		}
	}
	return s
}

func setBounds(n *node, dims int) {
	for i := 0; i < dims; i++ {
		n.lo[i] = n.pt[i]
		n.hi[i] = n.pt[i]
	}
}

func (t *Tree) insertNode(n *node) {
	if t.root == nil {
		n.axis = 0
		t.root = n
		return
	}
	cur := t.root
	for {
		for i := 0; i < t.dims; i++ {
			if n.pt[i] < cur.lo[i] {
				cur.lo[i] = n.pt[i]
			}
			if n.pt[i] > cur.hi[i] {
				cur.hi[i] = n.pt[i]
			}
		}
		next := &cur.left
		if n.pt[cur.axis] >= cur.pt[cur.axis] {
			next = &cur.right
		}
		if *next == nil {
			n.axis = int8((int(cur.axis) + 1) % t.dims)
			*next = n
			return
		}
		cur = *next
	}
}

func (t *Tree) maybeRebuild() {
	live := len(t.nodes)
	if t.dead+t.sinceBuild <= live/2+8 {
		return
	}
	nodes := make([]*node, 0, live)
	for _, n := range t.nodes {
		n.left, n.right = nil, nil
		setBounds(n, t.dims)
		nodes = append(nodes, n)
	}
	t.root = t.build(nodes, 0)
	t.dead = 0
	t.sinceBuild = 0
}

func (t *Tree) build(nodes []*node, axis int) *node {
	if len(nodes) == 0 {
		return nil
	}
	mid := len(nodes) / 2
	selectKth(nodes, mid, axis)
	n := nodes[mid]
	n.axis = int8(axis)
	next := (axis + 1) % t.dims
	n.left = t.build(nodes[:mid], next)
	n.right = t.build(nodes[mid+1:], next)
	setBounds(n, t.dims)
	for _, ch := range [2]*node{n.left, n.right} {
		if ch == nil {
			continue
		}
		for i := 0; i < t.dims; i++ {
			if ch.lo[i] < n.lo[i] {
				n.lo[i] = ch.lo[i]
			}
			if ch.hi[i] > n.hi[i] {
				n.hi[i] = ch.hi[i]
			}
		}
	}
	return n
}

// selectKth partially sorts nodes so nodes[k] is the k-th smallest on axis.
func selectKth(nodes []*node, k, axis int) {
	lo, hi := 0, len(nodes)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if nodes[mid].pt[axis] < nodes[lo].pt[axis] {
			nodes[mid], nodes[lo] = nodes[lo], nodes[mid]
		}
		if nodes[hi].pt[axis] < nodes[lo].pt[axis] {
			nodes[hi], nodes[lo] = nodes[lo], nodes[hi]
		}
		if nodes[hi].pt[axis] < nodes[mid].pt[axis] {
			nodes[hi], nodes[mid] = nodes[mid], nodes[hi]
		}
		pivot := nodes[mid].pt[axis]
		i, j := lo, hi
		for i <= j {
			for nodes[i].pt[axis] < pivot {
				i++
			}
			for nodes[j].pt[axis] > pivot {
				j--
			}
			if i <= j {
				nodes[i], nodes[j] = nodes[j], nodes[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return
		}
	}
}
