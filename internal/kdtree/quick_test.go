package kdtree

import (
	"math"
	"testing"
	"testing/quick"

	"dyndbscan/internal/geom"
)

// TestQuickNearest: for arbitrary point multisets, Nearest must agree with
// brute force (distance equality; ties may pick either point).
func TestQuickNearest(t *testing.T) {
	f := func(coords []float64, qx, qy float64) bool {
		tr := New(2)
		var pts []geom.Point
		for i := 0; i+1 < len(coords); i += 2 {
			x, y := fold(coords[i]), fold(coords[i+1])
			p := geom.Point{x, y}
			tr.Insert(int64(len(pts)), p)
			pts = append(pts, p)
		}
		q := geom.Point{fold(qx), fold(qy)}
		_, _, gotSq, ok := tr.Nearest(q)
		if !ok {
			return len(pts) == 0
		}
		best := math.Inf(1)
		for _, p := range pts {
			if d := geom.DistSq(q, p, 2); d < best {
				best = d
			}
		}
		return math.Abs(gotSq-best) < 1e-9*(1+best)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickProbeSound: whatever Probe returns is within rHigh; whenever it
// declines, no point is within rLow. Holds for any insert/delete interleave
// derived from the generated data.
func TestQuickProbeSound(t *testing.T) {
	f := func(coords []float64, deletes []uint8, qx, qy, r float64) bool {
		tr := New(2)
		live := make(map[int64]geom.Point)
		for i := 0; i+1 < len(coords); i += 2 {
			id := int64(i / 2)
			p := geom.Point{fold(coords[i]), fold(coords[i+1])}
			tr.Insert(id, p)
			live[id] = p
		}
		for _, d := range deletes {
			id := int64(d)
			if _, ok := live[id]; ok {
				tr.Delete(id)
				delete(live, id)
			}
		}
		rLow := math.Abs(fold(r))
		rHigh := rLow * 1.25
		q := geom.Point{fold(qx), fold(qy)}
		id, pt, ok := tr.Probe(q, rLow, rHigh)
		if ok {
			if _, liveID := live[id]; !liveID {
				return false
			}
			return geom.Dist(q, pt, 2) <= rHigh+1e-9
		}
		for _, p := range live {
			if geom.Dist(q, p, 2) <= rLow {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// fold maps an arbitrary float64 into a well-behaved coordinate range.
func fold(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1000)
}
