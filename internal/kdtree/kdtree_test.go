package kdtree

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dyndbscan/internal/geom"
)

func randPt(rng *rand.Rand, d int, scale float64) geom.Point {
	p := make(geom.Point, d)
	for i := 0; i < d; i++ {
		p[i] = (rng.Float64()*2 - 1) * scale
	}
	return p
}

// model is the brute-force reference.
type model struct {
	d   int
	pts map[int64]geom.Point
}

func (m *model) nearest(q geom.Point) (int64, float64) {
	best := int64(-1)
	bestSq := math.Inf(1)
	for id, p := range m.pts {
		if d := geom.DistSq(q, p, m.d); d < bestSq {
			best, bestSq = id, d
		}
	}
	return best, bestSq
}

func (m *model) anyWithin(q geom.Point, r float64) bool {
	for _, p := range m.pts {
		if geom.DistSq(q, p, m.d) <= r*r {
			return true
		}
	}
	return false
}

// TestNearestAgainstNaive checks exact NN under random churn in several
// dimensions, exercising rebuilds and tombstones.
func TestNearestAgainstNaive(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5, 7} {
		d := d
		t.Run(fmt.Sprintf("d%d", d), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(10 + d)))
			tr := New(d)
			m := &model{d: d, pts: make(map[int64]geom.Point)}
			next := int64(0)
			for op := 0; op < 4000; op++ {
				switch r := rng.Float64(); {
				case r < 0.55:
					p := randPt(rng, d, 50)
					tr.Insert(next, p)
					m.pts[next] = p
					next++
				case r < 0.8 && len(m.pts) > 0:
					for id := range m.pts {
						tr.Delete(id)
						delete(m.pts, id)
						break
					}
				default:
					q := randPt(rng, d, 60)
					id, _, distSq, ok := tr.Nearest(q)
					wantID, wantSq := m.nearest(q)
					if ok != (wantID >= 0) {
						t.Fatalf("op %d: Nearest ok=%v, model has %d points", op, ok, len(m.pts))
					}
					if ok && math.Abs(distSq-wantSq) > 1e-9 {
						t.Fatalf("op %d: Nearest dist %v, want %v (got id %d want %d)",
							op, distSq, wantSq, id, wantID)
					}
				}
				if tr.Len() != len(m.pts) {
					t.Fatalf("op %d: Len=%d want %d", op, tr.Len(), len(m.pts))
				}
			}
		})
	}
}

// TestProbeContract verifies the banded emptiness contract of Section 4.2:
// if some point lies within rLow the probe must succeed, and any returned
// point must be within rHigh. Both directions are checked under churn.
func TestProbeContract(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		for _, rho := range []float64{0, 0.001, 0.5} {
			d, rho := d, rho
			t.Run(fmt.Sprintf("d%d rho%v", d, rho), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(100*d) + int64(rho*1000)))
				tr := New(d)
				m := &model{d: d, pts: make(map[int64]geom.Point)}
				next := int64(0)
				const rLow = 5.0
				rHigh := rLow * (1 + rho)
				for op := 0; op < 3000; op++ {
					switch r := rng.Float64(); {
					case r < 0.5:
						p := randPt(rng, d, 30)
						tr.Insert(next, p)
						m.pts[next] = p
						next++
					case r < 0.7 && len(m.pts) > 0:
						for id := range m.pts {
							tr.Delete(id)
							delete(m.pts, id)
							break
						}
					default:
						q := randPt(rng, d, 35)
						id, pt, ok := tr.Probe(q, rLow, rHigh)
						if ok {
							if geom.Dist(q, pt, d) > rHigh+1e-9 {
								t.Fatalf("op %d: probe returned point at %v > rHigh %v",
									op, geom.Dist(q, pt, d), rHigh)
							}
							if _, exists := m.pts[id]; !exists {
								t.Fatalf("op %d: probe returned dead id %d", op, id)
							}
						} else if m.anyWithin(q, rLow) {
							t.Fatalf("op %d: probe missed a point within rLow", op)
						}
					}
				}
			})
		}
	}
}

// TestProbeExactWhenRhoZero: with rLow == rHigh the probe must behave as an
// exact emptiness query (the 2D exact DBSCAN configuration).
func TestProbeExactWhenRhoZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := New(2)
	m := &model{d: 2, pts: make(map[int64]geom.Point)}
	for i := int64(0); i < 500; i++ {
		p := randPt(rng, 2, 20)
		tr.Insert(i, p)
		m.pts[i] = p
	}
	const r = 3.0
	for i := 0; i < 2000; i++ {
		q := randPt(rng, 2, 25)
		_, _, ok := tr.Probe(q, r, r)
		if want := m.anyWithin(q, r); ok != want {
			t.Fatalf("query %d: Probe=%v want %v", i, ok, want)
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	tr := New(3)
	if _, _, ok := tr.Probe(geom.Point{0, 0, 0}, 1, 1); ok {
		t.Fatal("probe on empty tree must fail")
	}
	if _, _, _, ok := tr.Nearest(geom.Point{0, 0, 0}); ok {
		t.Fatal("nearest on empty tree must fail")
	}
	tr.Insert(1, geom.Point{1, 1, 1})
	id, _, distSq, ok := tr.Nearest(geom.Point{0, 0, 0})
	if !ok || id != 1 || math.Abs(distSq-3) > 1e-12 {
		t.Fatalf("singleton nearest = %d %v %v", id, distSq, ok)
	}
	tr.Delete(1)
	if tr.Len() != 0 {
		t.Fatal("delete failed")
	}
}

func TestPanics(t *testing.T) {
	tr := New(2)
	tr.Insert(1, geom.Point{0, 0})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate insert should panic")
			}
		}()
		tr.Insert(1, geom.Point{1, 1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unknown delete should panic")
			}
		}()
		tr.Delete(99)
	}()
}

// TestDegenerateInsertionOrders stresses sorted and clustered insertion
// orders, which unbalance naive kd-trees; rebuilds must keep queries correct.
func TestDegenerateInsertionOrders(t *testing.T) {
	tr := New(2)
	m := &model{d: 2, pts: make(map[int64]geom.Point)}
	id := int64(0)
	// Sorted line.
	for i := 0; i < 500; i++ {
		p := geom.Point{float64(i), float64(i)}
		tr.Insert(id, p)
		m.pts[id] = p
		id++
	}
	// Tight cluster of near-duplicates.
	for i := 0; i < 300; i++ {
		p := geom.Point{100 + float64(i)*1e-9, 100}
		tr.Insert(id, p)
		m.pts[id] = p
		id++
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		q := randPt(rng, 2, 600)
		_, _, distSq, ok := tr.Nearest(q)
		_, wantSq := m.nearest(q)
		if !ok || math.Abs(distSq-wantSq) > 1e-9 {
			t.Fatalf("query %d: dist %v want %v", i, distSq, wantSq)
		}
	}
}

func TestForEach(t *testing.T) {
	tr := New(2)
	for i := int64(0); i < 10; i++ {
		tr.Insert(i, geom.Point{float64(i), 0})
	}
	seen := 0
	tr.ForEach(func(int64, geom.Point) bool { seen++; return seen < 4 })
	if seen != 4 {
		t.Fatalf("early stop visited %d, want 4", seen)
	}
	if !tr.Has(3) || tr.Has(99) {
		t.Fatal("Has answers wrong")
	}
}
