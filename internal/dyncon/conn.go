package dyncon

import "fmt"

// CompID identifies a connected component. Ids are stable while no update
// runs, so they are comparable within one query pass (exactly the consistency
// the C-group-by query needs); an update may invalidate them.
type CompID *tnode

// Conn is a fully dynamic connectivity structure over an arbitrary set of
// int64 vertices. The zero value is not usable; call New.
type Conn struct {
	forests []*forest
	edges   map[edgeKey]*edgeRec
	verts   map[int64]*vrec
	comps   int
}

type forest struct {
	level int
	loops map[int64]*tnode
}

// loop returns (creating on demand) the loop node of v in this forest. A
// vertex appears in F_i only once an edge of level ≥ i touches it; until then
// it is an implicit singleton.
func (f *forest) loop(v int64) *tnode {
	n, ok := f.loops[v]
	if !ok {
		n = &tnode{vertex: v, head: v}
		update(n)
		f.loops[v] = n
	}
	return n
}

type vrec struct {
	adj []map[int64]struct{} // adj[i]: non-tree neighbors at level i
}

type edgeKey struct{ a, b int64 }

func mkKey(u, v int64) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

type edgeRec struct {
	a, b  int64
	level int
	tree  bool
	arcs  [][2]*tnode // per forest 0..level when tree: {arc(a,b), arc(b,a)}
}

// New returns an empty connectivity structure.
func New() *Conn {
	return &Conn{
		forests: []*forest{{level: 0, loops: make(map[int64]*tnode)}},
		edges:   make(map[edgeKey]*edgeRec),
		verts:   make(map[int64]*vrec),
	}
}

// NumVertices returns the number of vertices.
func (c *Conn) NumVertices() int { return len(c.verts) }

// NumEdges returns the number of edges.
func (c *Conn) NumEdges() int { return len(c.edges) }

// NumComponents returns the number of connected components.
func (c *Conn) NumComponents() int { return c.comps }

// HasVertex reports whether v is present.
func (c *Conn) HasVertex(v int64) bool {
	_, ok := c.verts[v]
	return ok
}

// HasEdge reports whether edge {u,v} is present.
func (c *Conn) HasEdge(u, v int64) bool {
	_, ok := c.edges[mkKey(u, v)]
	return ok
}

// AddVertex inserts an isolated vertex. It panics when v already exists.
func (c *Conn) AddVertex(v int64) {
	if _, ok := c.verts[v]; ok {
		panic(fmt.Sprintf("dyncon: vertex %d already present", v))
	}
	c.verts[v] = &vrec{}
	c.forests[0].loop(v)
	c.comps++
}

// RemoveVertex deletes v, which must be isolated (no incident edges); a
// non-isolated removal panics since it means the caller's grid-graph
// bookkeeping is broken.
func (c *Conn) RemoveVertex(v int64) {
	vr, ok := c.verts[v]
	if !ok {
		panic(fmt.Sprintf("dyncon: vertex %d not present", v))
	}
	for _, set := range vr.adj {
		if len(set) != 0 {
			panic(fmt.Sprintf("dyncon: removing vertex %d with non-tree edges", v))
		}
	}
	for _, f := range c.forests {
		n, ok := f.loops[v]
		if !ok {
			continue
		}
		splay(n)
		if n.left != nil || n.right != nil {
			panic(fmt.Sprintf("dyncon: removing vertex %d with tree edges", v))
		}
		delete(f.loops, v)
	}
	delete(c.verts, v)
	c.comps--
}

// Connected reports whether u and v are in the same component. Both must be
// present.
func (c *Conn) Connected(u, v int64) bool {
	lu := c.mustLoop0(u)
	lv := c.mustLoop0(v)
	if lu == lv {
		return true
	}
	splay(lu) // amortizes the access; lu is now its tree's root
	r := rootOf(lv)
	connected := r == lu
	splay(lv)
	return connected
}

// ComponentID returns an identifier of v's component, stable and comparable
// across calls as long as no update is performed in between. It deliberately
// avoids restructuring the trees.
func (c *Conn) ComponentID(v int64) CompID {
	return CompID(rootOf(c.mustLoop0(v)))
}

// ComponentSize returns the number of vertices in v's component.
func (c *Conn) ComponentSize(v int64) int {
	return int(rootOf(c.mustLoop0(v)).loopCount)
}

// ForEachInComponent calls fn on every vertex of v's component (including v
// itself), stopping early when fn returns false. Like ComponentID it avoids
// restructuring the trees, so it is safe to interleave with id queries; cost
// is linear in the component's tour length.
func (c *Conn) ForEachInComponent(v int64, fn func(int64) bool) {
	var walk func(n *tnode) bool
	walk = func(n *tnode) bool {
		if n == nil {
			return true
		}
		if n.loopCount == 0 {
			return true // no loop (vertex) nodes below here
		}
		if !walk(n.left) {
			return false
		}
		if n.isLoop() && !fn(n.vertex) {
			return false
		}
		return walk(n.right)
	}
	walk(rootOf(c.mustLoop0(v)))
}

func (c *Conn) mustLoop0(v int64) *tnode {
	n, ok := c.forests[0].loops[v]
	if !ok {
		panic(fmt.Sprintf("dyncon: vertex %d not present", v))
	}
	return n
}

// InsertEdge adds edge {u,v}. Inserting a duplicate edge, a self-loop, or an
// edge on an absent vertex panics.
func (c *Conn) InsertEdge(u, v int64) {
	if u == v {
		panic("dyncon: self-loop")
	}
	k := mkKey(u, v)
	if _, ok := c.edges[k]; ok {
		panic(fmt.Sprintf("dyncon: edge {%d,%d} already present", u, v))
	}
	if !c.HasVertex(u) || !c.HasVertex(v) {
		panic(fmt.Sprintf("dyncon: edge {%d,%d} on absent vertex", u, v))
	}
	rec := &edgeRec{a: k.a, b: k.b, level: 0}
	c.edges[k] = rec
	if c.Connected(u, v) {
		c.addNontree(rec, 0)
		return
	}
	rec.tree = true
	c.linkTree(rec, 0)
	setTreeFlag(rec.arcs[0][0], true)
	c.comps--
}

// DeleteEdge removes edge {u,v}; it panics when absent.
func (c *Conn) DeleteEdge(u, v int64) {
	k := mkKey(u, v)
	rec, ok := c.edges[k]
	if !ok {
		panic(fmt.Sprintf("dyncon: edge {%d,%d} not present", u, v))
	}
	delete(c.edges, k)
	if !rec.tree {
		c.removeNontree(rec, rec.level)
		return
	}
	// Cut the tree edge out of every forest that contains it.
	for i := 0; i <= rec.level; i++ {
		ettCut(rec.arcs[i][0], rec.arcs[i][1])
	}
	// Search for a replacement edge from the edge's level downward.
	for i := rec.level; i >= 0; i-- {
		if c.replace(rec.a, rec.b, i) {
			return
		}
	}
	c.comps++
}

// addNontree registers rec as a non-tree edge at the given level, updating
// adjacency sets and loop-node flags in F_level.
func (c *Conn) addNontree(rec *edgeRec, level int) {
	rec.level = level
	f := c.forest(level)
	for _, v := range [2]int64{rec.a, rec.b} {
		vr := c.verts[v]
		for len(vr.adj) <= level {
			vr.adj = append(vr.adj, nil)
		}
		if vr.adj[level] == nil {
			vr.adj[level] = make(map[int64]struct{})
		}
		other := rec.a
		if v == rec.a {
			other = rec.b
		}
		vr.adj[level][other] = struct{}{}
		setNontreeFlag(f.loop(v), true)
	}
}

// removeNontree unregisters rec from level's adjacency sets and flags.
func (c *Conn) removeNontree(rec *edgeRec, level int) {
	f := c.forests[level]
	for _, v := range [2]int64{rec.a, rec.b} {
		vr := c.verts[v]
		other := rec.a
		if v == rec.a {
			other = rec.b
		}
		delete(vr.adj[level], other)
		if len(vr.adj[level]) == 0 {
			setNontreeFlag(f.loop(v), false)
		}
	}
}

// linkTree links rec into forest level (creating its arc pair there).
func (c *Conn) linkTree(rec *edgeRec, level int) {
	f := c.forest(level)
	arcAB := &tnode{vertex: rec.a, head: rec.b, edge: rec}
	arcBA := &tnode{vertex: rec.b, head: rec.a, edge: rec}
	update(arcAB)
	update(arcBA)
	for len(rec.arcs) <= level {
		rec.arcs = append(rec.arcs, [2]*tnode{})
	}
	rec.arcs[level] = [2]*tnode{arcAB, arcBA}
	ettLink(f.loop(rec.a), f.loop(rec.b), arcAB, arcBA)
}

// forest returns forest i, growing the hierarchy on demand.
func (c *Conn) forest(i int) *forest {
	for len(c.forests) <= i {
		c.forests = append(c.forests, &forest{
			level: len(c.forests),
			loops: make(map[int64]*tnode),
		})
	}
	return c.forests[i]
}

// replace runs the HDT replacement search at level i after tree edge {u,v}
// was cut. It reports whether a replacement reconnected the two sides.
func (c *Conn) replace(u, v int64, i int) bool {
	f := c.forests[i]
	lu, lv := f.loop(u), f.loop(v)
	splay(lu)
	su := lu.loopCount
	splay(lv)
	sv := lv.loopCount
	handle := lu
	if sv < su {
		handle = lv
	}

	// Step A: push the level-i tree edges of the smaller side to level i+1.
	// Its spanning tree then exists entirely in F_{i+1}, preserving the HDT
	// invariant for the non-tree promotions below.
	for {
		r := rootOf(handle)
		if !r.aggTree {
			break
		}
		arc := findTreeArc(r)
		c.promoteTree(arc.edge, i)
	}

	// Step B: scan non-tree level-i edges incident to the smaller side.
	// Edges with both endpoints inside are promoted to level i+1; the first
	// edge crossing to the other side is the replacement.
	for {
		r := rootOf(handle)
		if !r.aggNontree {
			break
		}
		ln := findNontreeLoop(r)
		x := ln.vertex
		neighbors := make([]int64, 0, len(c.verts[x].adj[i]))
		for w := range c.verts[x].adj[i] {
			neighbors = append(neighbors, w)
		}
		for _, w := range neighbors {
			rec := c.edges[mkKey(x, w)]
			if rootOf(f.loops[x]) == rootOf(f.loops[w]) {
				c.removeNontree(rec, i)
				c.addNontree(rec, i+1)
				continue
			}
			// Replacement found: it becomes a tree edge at level i,
			// linked into every forest F_0..F_i.
			c.removeNontree(rec, i)
			rec.tree = true
			rec.level = i
			for j := 0; j <= i; j++ {
				c.linkTree(rec, j)
			}
			setTreeFlag(rec.arcs[i][0], true)
			return true
		}
	}
	return false
}

// promoteTree raises tree edge rec from level i to i+1: its exact-level flag
// moves from F_i to the new arc pair in F_{i+1}.
func (c *Conn) promoteTree(rec *edgeRec, i int) {
	if !rec.tree || rec.level != i {
		panic("dyncon: promoting edge at wrong level")
	}
	setTreeFlag(rec.arcs[i][0], false)
	rec.level = i + 1
	c.linkTree(rec, i+1)
	setTreeFlag(rec.arcs[i+1][0], true)
}
