// Package dyncon implements fully dynamic graph connectivity with
// polylogarithmic amortized updates, after Holm, de Lichtenberg and Thorup
// (JACM 2001) — reference [14] of the paper. It is the fully-dynamic "CC
// structure" of Section 4.2: the grid graph's EdgeInsert, EdgeRemove and
// CC-Id operations are answered here in Õ(1) amortized time, which is what
// makes Theorem 4's fully dynamic ρ-double-approximate DBSCAN possible.
//
// The structure maintains a hierarchy of spanning forests F_0 ⊇ F_1 ⊇ … where
// every edge carries a level, F_i contains the tree edges of level ≥ i, and
// non-tree edges are kept in per-vertex, per-level adjacency sets. Each F_i
// is represented by Euler tour trees built on splay trees, augmented with
// (a) subtree counts of vertex (loop) nodes — component sizes, and
// (b) flags locating vertices with non-tree edges and tree edges of exactly
// level i — the two searches the HDT replacement scan needs.
//
// This file implements the Euler tour tree layer.
package dyncon

// tnode is a node of a splay tree whose in-order traversal is an Euler tour.
// A node is either a vertex "loop" node (edge == nil), representing the
// vertex itself inside its tour, or an "arc" node representing one direction
// of a tree edge.
type tnode struct {
	parent, left, right *tnode

	vertex int64    // loop: the vertex; arc: the tail vertex
	head   int64    // arc: the head vertex (loop: unused)
	edge   *edgeRec // arc: owning edge; nil for loop nodes

	selfNontree bool // loop nodes: vertex has ≥1 non-tree edge at this level
	selfTree    bool // primary arcs: edge level equals this forest's level
	aggNontree  bool
	aggTree     bool
	loopCount   int32 // number of loop nodes in this subtree
}

func (n *tnode) isLoop() bool { return n.edge == nil }

// update recomputes n's aggregates from its children and own flags.
func update(n *tnode) {
	n.aggNontree = n.selfNontree
	n.aggTree = n.selfTree
	if n.edge == nil {
		n.loopCount = 1
	} else {
		n.loopCount = 0
	}
	if l := n.left; l != nil {
		n.aggNontree = n.aggNontree || l.aggNontree
		n.aggTree = n.aggTree || l.aggTree
		n.loopCount += l.loopCount
	}
	if r := n.right; r != nil {
		n.aggNontree = n.aggNontree || r.aggNontree
		n.aggTree = n.aggTree || r.aggTree
		n.loopCount += r.loopCount
	}
}

// rotate lifts x above its parent, preserving in-order.
func rotate(x *tnode) {
	p := x.parent
	g := p.parent
	if p.left == x {
		p.left = x.right
		if x.right != nil {
			x.right.parent = p
		}
		x.right = p
	} else {
		p.right = x.left
		if x.left != nil {
			x.left.parent = p
		}
		x.left = p
	}
	p.parent = x
	x.parent = g
	if g != nil {
		if g.left == p {
			g.left = x
		} else {
			g.right = x
		}
	}
	update(p)
	update(x)
}

// splay rotates x to the root of its splay tree, refreshing aggregates along
// the access path. Calling splay after changing a node's self flags restores
// all affected aggregates.
func splay(x *tnode) {
	for x.parent != nil {
		p := x.parent
		g := p.parent
		if g != nil {
			if (g.left == p) == (p.left == x) {
				rotate(p) // zig-zig
			} else {
				rotate(x) // zig-zag
			}
		}
		rotate(x)
	}
	update(x)
}

// rootOf walks to the splay root without restructuring. It is used by
// CC-Id-style queries, which must not move roots around so that ids stay
// comparable within one grouping pass.
func rootOf(n *tnode) *tnode {
	for n.parent != nil {
		n = n.parent
	}
	return n
}

// join concatenates the sequences rooted at a and b and returns the new root.
// Either may be nil.
func join(a, b *tnode) *tnode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	// Splay the last element of a to the root; it then has no right child.
	r := a
	for r.right != nil {
		r = r.right
	}
	splay(r)
	r.right = b
	b.parent = r
	update(r)
	return r
}

// splitBefore splits x's sequence into (everything before x, x and after),
// returning the root of the "before" part (nil if x was first). x becomes the
// root of its part.
func splitBefore(x *tnode) *tnode {
	splay(x)
	l := x.left
	if l != nil {
		l.parent = nil
		x.left = nil
		update(x)
	}
	return l
}

// detach isolates x from its sequence, returning the roots of the parts
// before and after it. x itself becomes a singleton.
func detach(x *tnode) (before, after *tnode) {
	splay(x)
	before, after = x.left, x.right
	if before != nil {
		before.parent = nil
	}
	if after != nil {
		after.parent = nil
	}
	x.left, x.right = nil, nil
	update(x)
	return before, after
}

// reroot rotates the tour of the tree containing loop so that it starts at
// loop, and returns the new root. This is the Euler tour analogue of
// re-rooting the represented tree at that vertex.
func reroot(loop *tnode) *tnode {
	before := splitBefore(loop)
	if before == nil {
		return rootOf(loop)
	}
	return join(rootOf(loop), before)
}

// ettLink merges the tours of u and v (given by their loop nodes, in distinct
// trees) into the tour of the linked tree, inserting the two arc nodes of the
// new tree edge: tour(u-tree rerooted at u) ++ arcUV ++ tour(v-tree rerooted
// at v) ++ arcVU.
func ettLink(loopU, loopV, arcUV, arcVU *tnode) {
	ru := reroot(loopU)
	rv := reroot(loopV)
	t := join(ru, arcUV)
	t = join(t, rv)
	join(t, arcVU)
}

// ettCut removes the tree edge represented by arcs a1 and a2 from its tour,
// splitting it into the tours of the two sides. The arc nodes are discarded.
func ettCut(a1, a2 *tnode) {
	before, after := detach(a1)
	// a2 lies entirely in one of the two parts.
	var mid *tnode
	if after != nil && rootOf(a2) == after {
		// tour = before ++ [a1] ++ mid ++ [a2] ++ tail
		var tail *tnode
		mid, tail = detach(a2)
		join(before, tail)
	} else {
		// tour = head ++ [a2] ++ mid ++ [a1] ++ after
		var head *tnode
		head, mid = detach(a2)
		join(head, after)
	}
	_ = mid // mid is the root (or nil for a single-vertex side) of the split-off tour
}

// setNontreeFlag updates the vertex-has-nontree-edges flag on a loop node and
// restores aggregates by splaying it.
func setNontreeFlag(loop *tnode, v bool) {
	if loop.selfNontree == v {
		return
	}
	loop.selfNontree = v
	splay(loop)
}

// setTreeFlag updates the edge-is-exactly-this-level flag on a primary arc
// node and restores aggregates by splaying it.
func setTreeFlag(arc *tnode, v bool) {
	if arc.selfTree == v {
		return
	}
	arc.selfTree = v
	splay(arc)
}

// findNontreeLoop returns a loop node with selfNontree set in the subtree
// rooted at r, or nil when the subtree's aggregate says there is none.
func findNontreeLoop(r *tnode) *tnode {
	if r == nil || !r.aggNontree {
		return nil
	}
	for {
		if r.selfNontree && r.isLoop() {
			return r
		}
		if r.left != nil && r.left.aggNontree {
			r = r.left
			continue
		}
		if r.selfNontree {
			// selfNontree on a non-loop node would be a corruption.
			panic("dyncon: nontree flag on arc node")
		}
		r = r.right
	}
}

// findTreeArc returns an arc node with selfTree set in the subtree rooted at
// r, or nil when there is none.
func findTreeArc(r *tnode) *tnode {
	if r == nil || !r.aggTree {
		return nil
	}
	for {
		if r.selfTree {
			return r
		}
		if r.left != nil && r.left.aggTree {
			r = r.left
			continue
		}
		r = r.right
	}
}
