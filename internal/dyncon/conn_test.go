package dyncon

import (
	"fmt"
	"math/rand"
	"testing"
)

// naiveConn is a brute-force connectivity oracle: adjacency sets + BFS.
type naiveConn struct {
	adj map[int64]map[int64]bool
}

func newNaive() *naiveConn {
	return &naiveConn{adj: make(map[int64]map[int64]bool)}
}

func (n *naiveConn) addVertex(v int64)    { n.adj[v] = make(map[int64]bool) }
func (n *naiveConn) removeVertex(v int64) { delete(n.adj, v) }
func (n *naiveConn) addEdge(u, v int64)   { n.adj[u][v] = true; n.adj[v][u] = true }
func (n *naiveConn) removeEdge(u, v int64) {
	delete(n.adj[u], v)
	delete(n.adj[v], u)
}

func (n *naiveConn) connected(u, v int64) bool {
	if u == v {
		return true
	}
	seen := map[int64]bool{u: true}
	queue := []int64{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for y := range n.adj[x] {
			if y == v {
				return true
			}
			if !seen[y] {
				seen[y] = true
				queue = append(queue, y)
			}
		}
	}
	return false
}

func (n *naiveConn) components() int {
	seen := make(map[int64]bool)
	comps := 0
	for v := range n.adj {
		if seen[v] {
			continue
		}
		comps++
		queue := []int64{v}
		seen[v] = true
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for y := range n.adj[x] {
				if !seen[y] {
					seen[y] = true
					queue = append(queue, y)
				}
			}
		}
	}
	return comps
}

func TestConnBasic(t *testing.T) {
	c := New()
	for v := int64(1); v <= 4; v++ {
		c.AddVertex(v)
	}
	if got := c.NumComponents(); got != 4 {
		t.Fatalf("components = %d, want 4", got)
	}
	c.InsertEdge(1, 2)
	c.InsertEdge(3, 4)
	if c.Connected(1, 3) {
		t.Fatal("1 and 3 should not be connected")
	}
	c.InsertEdge(2, 3)
	if !c.Connected(1, 4) {
		t.Fatal("1 and 4 should be connected")
	}
	if got := c.NumComponents(); got != 1 {
		t.Fatalf("components = %d, want 1", got)
	}
	// A cycle edge, then remove a tree edge: the cycle edge must replace it.
	c.InsertEdge(1, 4)
	c.DeleteEdge(2, 3)
	if !c.Connected(1, 3) {
		t.Fatal("cycle edge should keep 1 and 3 connected")
	}
	c.DeleteEdge(1, 4)
	if c.Connected(1, 3) {
		t.Fatal("1 and 3 should be disconnected after removing both paths")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConnComponentID(t *testing.T) {
	c := New()
	for v := int64(0); v < 6; v++ {
		c.AddVertex(v)
	}
	c.InsertEdge(0, 1)
	c.InsertEdge(1, 2)
	c.InsertEdge(3, 4)
	// Component ids must be equal within a component and distinct across,
	// consistently over a whole read-only pass.
	ids := make([]CompID, 6)
	for v := int64(0); v < 6; v++ {
		ids[v] = c.ComponentID(v)
	}
	if ids[0] != ids[1] || ids[1] != ids[2] {
		t.Fatal("0,1,2 should share a component id")
	}
	if ids[3] != ids[4] {
		t.Fatal("3,4 should share a component id")
	}
	if ids[0] == ids[3] || ids[0] == ids[5] || ids[3] == ids[5] {
		t.Fatal("distinct components must have distinct ids")
	}
}

// TestConnRandomAgainstNaive drives random edge insertions/deletions and
// vertex churn, comparing connectivity answers and component counts against
// the brute-force oracle, with full structural validation along the way.
func TestConnRandomAgainstNaive(t *testing.T) {
	configs := []struct {
		vertices int
		ops      int
		seed     int64
	}{
		{vertices: 8, ops: 600, seed: 1},
		{vertices: 20, ops: 1200, seed: 2},
		{vertices: 50, ops: 2000, seed: 3},
		{vertices: 120, ops: 2500, seed: 4},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("v%d", cfg.vertices), func(t *testing.T) {
			rng := rand.New(rand.NewSource(cfg.seed))
			c := New()
			naive := newNaive()
			var verts []int64
			next := int64(0)
			edges := make(map[[2]int64]bool)
			edgeList := func() [][2]int64 {
				out := make([][2]int64, 0, len(edges))
				for e := range edges {
					out = append(out, e)
				}
				return out
			}
			for i := 0; i < cfg.vertices; i++ {
				c.AddVertex(next)
				naive.addVertex(next)
				verts = append(verts, next)
				next++
			}
			for op := 0; op < cfg.ops; op++ {
				switch r := rng.Float64(); {
				case r < 0.45: // insert edge
					u := verts[rng.Intn(len(verts))]
					v := verts[rng.Intn(len(verts))]
					if u == v {
						continue
					}
					k := [2]int64{min64(u, v), max64(u, v)}
					if edges[k] {
						continue
					}
					edges[k] = true
					c.InsertEdge(u, v)
					naive.addEdge(u, v)
				case r < 0.85: // delete edge
					el := edgeList()
					if len(el) == 0 {
						continue
					}
					k := el[rng.Intn(len(el))]
					delete(edges, k)
					c.DeleteEdge(k[0], k[1])
					naive.removeEdge(k[0], k[1])
				default: // occasionally churn an isolated vertex
					u := verts[rng.Intn(len(verts))]
					isolated := true
					for e := range edges {
						if e[0] == u || e[1] == u {
							isolated = false
							break
						}
					}
					if isolated {
						c.RemoveVertex(u)
						naive.removeVertex(u)
						for i, v := range verts {
							if v == u {
								verts[i] = verts[len(verts)-1]
								verts = verts[:len(verts)-1]
								break
							}
						}
					}
					c.AddVertex(next)
					naive.addVertex(next)
					verts = append(verts, next)
					next++
				}
				// Spot-check connectivity of random pairs.
				for q := 0; q < 8; q++ {
					u := verts[rng.Intn(len(verts))]
					v := verts[rng.Intn(len(verts))]
					if got, want := c.Connected(u, v), naive.connected(u, v); got != want {
						t.Fatalf("op %d: Connected(%d,%d)=%v want %v", op, u, v, got, want)
					}
				}
				if got, want := c.NumComponents(), naive.components(); got != want {
					t.Fatalf("op %d: NumComponents=%d want %d", op, got, want)
				}
				if op%25 == 0 {
					if err := c.Validate(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
			}
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConnComponentIDPartition cross-checks ComponentID grouping against the
// oracle partition after a random history.
func TestConnComponentIDPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := New()
	naive := newNaive()
	const n = 40
	for v := int64(0); v < n; v++ {
		c.AddVertex(v)
		naive.addVertex(v)
	}
	edges := make(map[[2]int64]bool)
	for op := 0; op < 800; op++ {
		u := rng.Int63n(n)
		v := rng.Int63n(n)
		if u == v {
			continue
		}
		k := [2]int64{min64(u, v), max64(u, v)}
		if edges[k] {
			delete(edges, k)
			c.DeleteEdge(u, v)
			naive.removeEdge(u, v)
		} else {
			edges[k] = true
			c.InsertEdge(u, v)
			naive.addEdge(u, v)
		}
	}
	ids := make(map[int64]CompID)
	for v := int64(0); v < n; v++ {
		ids[v] = c.ComponentID(v)
	}
	for u := int64(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			same := ids[u] == ids[v]
			if want := naive.connected(u, v); same != want {
				t.Fatalf("ComponentID grouping: (%d,%d) same=%v want %v", u, v, same, want)
			}
		}
	}
}

// TestConnDeepPath exercises long chains (worst case for replacement search).
func TestConnDeepPath(t *testing.T) {
	c := New()
	const n = 300
	for v := int64(0); v < n; v++ {
		c.AddVertex(v)
	}
	for v := int64(0); v+1 < n; v++ {
		c.InsertEdge(v, v+1)
	}
	// Parallel shortcut edges every 10 vertices.
	for v := int64(0); v+10 < n; v += 10 {
		c.InsertEdge(v, v+10)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Remove every chain edge; shortcuts must keep decades connected.
	for v := int64(0); v+1 < n; v++ {
		c.DeleteEdge(v, v+1)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c.Connected(0, 290) {
		t.Fatal("shortcut edges should keep 0 and 290 connected")
	}
	if c.Connected(0, 295) {
		t.Fatal("0 and 295 should be in different components")
	}
}

func TestConnPanics(t *testing.T) {
	c := New()
	c.AddVertex(1)
	c.AddVertex(2)
	c.InsertEdge(1, 2)
	assertPanics(t, "duplicate edge", func() { c.InsertEdge(2, 1) })
	assertPanics(t, "self loop", func() { c.InsertEdge(1, 1) })
	assertPanics(t, "absent vertex edge", func() { c.InsertEdge(1, 99) })
	assertPanics(t, "duplicate vertex", func() { c.AddVertex(1) })
	assertPanics(t, "remove connected vertex", func() { c.RemoveVertex(1) })
	assertPanics(t, "delete absent edge", func() { c.DeleteEdge(1, 99) })
	c.DeleteEdge(1, 2)
	c.RemoveVertex(1) // now legal
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
