package dyncon

import "fmt"

// Validate exhaustively checks the structure's internal invariants: edge
// bookkeeping, flag placement, splay aggregates, Euler tour bracket
// structure, the forest hierarchy F_0 ⊇ F_1 ⊇ …, and the component count.
// It is O(total structure size) and intended for tests and debugging.
func (c *Conn) Validate() error {
	// 1. Edge records vs adjacency sets and arc placement.
	nontreeWant := make(map[edgeKey]int) // edge -> level, from adj sets
	for v, vr := range c.verts {
		for lvl, set := range vr.adj {
			for w := range set {
				k := mkKey(v, w)
				if prev, ok := nontreeWant[k]; ok && prev != lvl {
					return fmt.Errorf("edge %v in adj sets at levels %d and %d", k, prev, lvl)
				}
				nontreeWant[k] = lvl
				// Symmetry.
				wr, ok := c.verts[w]
				if !ok {
					return fmt.Errorf("adj entry %d->%d to absent vertex", v, w)
				}
				if lvl >= len(wr.adj) || wr.adj[lvl] == nil {
					return fmt.Errorf("adj entry %d->%d missing reverse set", v, w)
				}
				if _, ok := wr.adj[lvl][v]; !ok {
					return fmt.Errorf("adj entry %d->%d not symmetric", v, w)
				}
			}
		}
	}
	for k, rec := range c.edges {
		if rec.tree {
			if _, ok := nontreeWant[k]; ok {
				return fmt.Errorf("tree edge %v present in adj sets", k)
			}
			if len(rec.arcs) <= rec.level {
				return fmt.Errorf("tree edge %v missing arcs up to level %d", k, rec.level)
			}
			for i := 0; i <= rec.level; i++ {
				for s := 0; s < 2; s++ {
					a := rec.arcs[i][s]
					if a == nil || a.edge != rec {
						return fmt.Errorf("tree edge %v arc %d/%d wrong ownership", k, i, s)
					}
				}
			}
		} else {
			lvl, ok := nontreeWant[k]
			if !ok {
				return fmt.Errorf("non-tree edge %v absent from adj sets", k)
			}
			if lvl != rec.level {
				return fmt.Errorf("non-tree edge %v level %d but adj sets say %d", k, rec.level, lvl)
			}
			delete(nontreeWant, k)
		}
	}
	for k := range nontreeWant {
		return fmt.Errorf("adj sets contain unknown edge %v", k)
	}

	// 2. Per-forest structure.
	for i, f := range c.forests {
		roots := make(map[*tnode]bool)
		for v, loop := range f.loops {
			if loop.vertex != v || !loop.isLoop() {
				return fmt.Errorf("F_%d: loop node for %d malformed", i, v)
			}
			wantFlag := false
			if vr, ok := c.verts[v]; ok && i < len(vr.adj) {
				wantFlag = len(vr.adj[i]) > 0
			}
			if loop.selfNontree != wantFlag {
				return fmt.Errorf("F_%d: vertex %d nontree flag=%v want %v", i, v, loop.selfNontree, wantFlag)
			}
			roots[rootOf(loop)] = true
		}
		for r := range roots {
			if err := c.validateTree(i, r); err != nil {
				return err
			}
		}
		// Partition must equal connectivity over tree edges of level ≥ i.
		if err := c.validatePartition(i, f); err != nil {
			return err
		}
	}

	// 3. Non-tree edges must connect vertices in the same F_level tree.
	for k, rec := range c.edges {
		if rec.tree {
			continue
		}
		f := c.forests[rec.level]
		la, lb := f.loops[rec.a], f.loops[rec.b]
		if la == nil || lb == nil || rootOf(la) != rootOf(lb) {
			return fmt.Errorf("non-tree edge %v endpoints not connected in F_%d", k, rec.level)
		}
	}

	// 4. Component count.
	roots := make(map[*tnode]bool)
	for v := range c.verts {
		roots[rootOf(c.forests[0].loops[v])] = true
	}
	if len(roots) != c.comps {
		return fmt.Errorf("comps=%d but F_0 has %d roots", c.comps, len(roots))
	}
	return nil
}

// validateTree checks aggregates, tour bracket structure, and flag placement
// of one splay tree in forest level.
func (c *Conn) validateTree(level int, root *tnode) error {
	var seq []*tnode
	var walk func(n *tnode) error
	walk = func(n *tnode) error {
		if n == nil {
			return nil
		}
		if n.left != nil && n.left.parent != n {
			return fmt.Errorf("F_%d: broken parent link (left)", level)
		}
		if n.right != nil && n.right.parent != n {
			return fmt.Errorf("F_%d: broken parent link (right)", level)
		}
		if err := walk(n.left); err != nil {
			return err
		}
		seq = append(seq, n)
		if err := walk(n.right); err != nil {
			return err
		}
		// Aggregates.
		agNon, agTree := n.selfNontree, n.selfTree
		var cnt int32
		if n.isLoop() {
			cnt = 1
		}
		for _, ch := range [2]*tnode{n.left, n.right} {
			if ch != nil {
				agNon = agNon || ch.aggNontree
				agTree = agTree || ch.aggTree
				cnt += ch.loopCount
			}
		}
		if agNon != n.aggNontree || agTree != n.aggTree || cnt != n.loopCount {
			return fmt.Errorf("F_%d: stale aggregates at node %d->%d", level, n.vertex, n.head)
		}
		// Flag placement.
		if n.selfTree {
			if n.isLoop() {
				return fmt.Errorf("F_%d: tree flag on loop node %d", level, n.vertex)
			}
			if n.edge.level != level || !n.edge.tree || n.edge.arcs[level][0] != n {
				return fmt.Errorf("F_%d: tree flag misplaced on %d->%d", level, n.vertex, n.head)
			}
		}
		if n.selfNontree && !n.isLoop() {
			return fmt.Errorf("F_%d: nontree flag on arc node", level)
		}
		return nil
	}
	if err := walk(root); err != nil {
		return err
	}
	// Bracket structure: arcs of each edge must nest like parentheses.
	var stack []*tnode
	loops := 0
	for _, n := range seq {
		if n.isLoop() {
			loops++
			continue
		}
		if len(stack) > 0 && stack[len(stack)-1].edge == n.edge {
			stack = stack[:len(stack)-1]
		} else {
			stack = append(stack, n)
		}
	}
	if len(stack) != 0 {
		return fmt.Errorf("F_%d: unbalanced tour brackets (%d left)", level, len(stack))
	}
	if int32(loops) != root.loopCount {
		return fmt.Errorf("F_%d: loopCount %d but %d loop nodes in tour", level, root.loopCount, loops)
	}
	return nil
}

// validatePartition verifies that the ETT partition of forest level equals
// connectivity over tree edges of level ≥ level.
func (c *Conn) validatePartition(level int, f *forest) error {
	// Union-find over vertex ids restricted to tree edges of level ≥ level.
	parent := make(map[int64]int64)
	var find func(x int64) int64
	find = func(x int64) int64 {
		if parent[x] == x {
			return x
		}
		r := find(parent[x])
		parent[x] = r
		return r
	}
	for v := range f.loops {
		parent[v] = v
	}
	for _, rec := range c.edges {
		if !rec.tree || rec.level < level {
			continue
		}
		if _, ok := parent[rec.a]; !ok {
			return fmt.Errorf("F_%d: tree edge endpoint %d has no loop node", level, rec.a)
		}
		if _, ok := parent[rec.b]; !ok {
			return fmt.Errorf("F_%d: tree edge endpoint %d has no loop node", level, rec.b)
		}
		ra, rb := find(rec.a), find(rec.b)
		if ra == rb {
			return fmt.Errorf("F_%d: tree edges of level ≥ %d contain a cycle", level, level)
		}
		parent[ra] = rb
	}
	// Compare partitions.
	ettRoots := make(map[int64]*tnode)
	for v, loop := range f.loops {
		ettRoots[v] = rootOf(loop)
	}
	byUF := make(map[int64]*tnode)
	for v := range f.loops {
		r := find(v)
		if prev, ok := byUF[r]; ok {
			if prev != ettRoots[v] {
				return fmt.Errorf("F_%d: ETT splits UF component of %d", level, v)
			}
		} else {
			byUF[r] = ettRoots[v]
		}
	}
	seen := make(map[*tnode]int64)
	for v := range f.loops {
		r := ettRoots[v]
		u := find(v)
		if prev, ok := seen[r]; ok {
			if find(prev) != u {
				return fmt.Errorf("F_%d: ETT merges UF components of %d and %d", level, prev, v)
			}
		} else {
			seen[r] = v
		}
	}
	return nil
}
