package dyncon

import (
	"math/rand"
	"testing"
)

// TestStarTeardown: a high-degree hub exercises replacement searches that
// repeatedly promote edges around one vertex.
func TestStarTeardown(t *testing.T) {
	c := New()
	const n = 200
	for v := int64(0); v <= n; v++ {
		c.AddVertex(v)
	}
	for v := int64(1); v <= n; v++ {
		c.InsertEdge(0, v)
	}
	// A ring over the leaves provides replacements for every spoke.
	for v := int64(1); v <= n; v++ {
		w := v%n + 1
		c.InsertEdge(v, w)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Remove all spokes: the ring must keep all leaves connected; the hub
	// disconnects only after its last spoke goes.
	for v := int64(1); v < n; v++ {
		c.DeleteEdge(0, v)
		if !c.Connected(1, v) {
			t.Fatalf("leaves disconnected after removing spoke %d", v)
		}
		if !c.Connected(0, 1) {
			t.Fatalf("hub disconnected while spoke to %d remains", n)
		}
	}
	c.DeleteEdge(0, n)
	if c.Connected(0, 1) {
		t.Fatal("hub should be isolated")
	}
	if !c.Connected(1, n/2) {
		t.Fatal("ring broken")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCliqueTeardown: deleting the edges of a complete graph in random
// order drives many levels of promotions.
func TestCliqueTeardown(t *testing.T) {
	c := New()
	const n = 24
	for v := int64(0); v < n; v++ {
		c.AddVertex(v)
	}
	var edges [][2]int64
	for u := int64(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			c.InsertEdge(u, v)
			edges = append(edges, [2]int64{u, v})
		}
	}
	naive := newNaive()
	for v := int64(0); v < n; v++ {
		naive.addVertex(v)
	}
	for _, e := range edges {
		naive.addEdge(e[0], e[1])
	}
	rng := rand.New(rand.NewSource(8))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for i, e := range edges {
		c.DeleteEdge(e[0], e[1])
		naive.removeEdge(e[0], e[1])
		if got, want := c.NumComponents(), naive.components(); got != want {
			t.Fatalf("after %d deletions: components=%d want %d", i+1, got, want)
		}
		if i%50 == 0 {
			if err := c.Validate(); err != nil {
				t.Fatalf("after %d deletions: %v", i+1, err)
			}
		}
	}
	if c.NumComponents() != n {
		t.Fatal("all vertices should be isolated")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelPathsChain: two long disjoint paths between the same
// endpoints; cutting one path edge by edge must never disconnect the ends.
func TestParallelPathsChain(t *testing.T) {
	c := New()
	const l = 150
	// Path A: 0..l, Path B: 0, l+1..2l-1, l.
	for v := int64(0); v <= 2*l; v++ {
		c.AddVertex(v)
	}
	for v := int64(0); v < l; v++ {
		c.InsertEdge(v, v+1)
	}
	prev := int64(0)
	for v := int64(l + 1); v < 2*l; v++ {
		c.InsertEdge(prev, v)
		prev = v
	}
	c.InsertEdge(prev, l)
	for v := int64(0); v < l; v++ {
		c.DeleteEdge(v, v+1)
		if !c.Connected(0, l) {
			t.Fatalf("endpoints disconnected after cutting A-edge %d with path B intact", v)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
