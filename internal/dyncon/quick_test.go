package dyncon

import (
	"testing"
	"testing/quick"
)

// TestQuickConnectivity interprets arbitrary byte strings as edge-toggle
// scripts over a fixed vertex set and checks every pairwise connectivity
// answer against BFS — quick finds op interleavings a hand-written random
// walk might not.
func TestQuickConnectivity(t *testing.T) {
	const n = 12
	f := func(script []uint8) bool {
		c := New()
		naive := newNaive()
		for v := int64(0); v < n; v++ {
			c.AddVertex(v)
			naive.addVertex(v)
		}
		live := make(map[[2]int64]bool)
		for i := 0; i+1 < len(script); i += 2 {
			u := int64(script[i] % n)
			v := int64(script[i+1] % n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			k := [2]int64{u, v}
			if live[k] {
				c.DeleteEdge(u, v)
				naive.removeEdge(u, v)
				delete(live, k)
			} else {
				c.InsertEdge(u, v)
				naive.addEdge(u, v)
				live[k] = true
			}
		}
		for u := int64(0); u < n; u++ {
			for v := u + 1; v < n; v++ {
				if c.Connected(u, v) != naive.connected(u, v) {
					return false
				}
			}
		}
		return c.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickComponentCount: component count must equal n minus the rank of
// the edge set, for any toggle script.
func TestQuickComponentCount(t *testing.T) {
	const n = 16
	f := func(script []uint8) bool {
		c := New()
		naive := newNaive()
		for v := int64(0); v < n; v++ {
			c.AddVertex(v)
			naive.addVertex(v)
		}
		live := make(map[[2]int64]bool)
		for i := 0; i+1 < len(script); i += 2 {
			u := int64(script[i] % n)
			v := int64(script[i+1] % n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			k := [2]int64{u, v}
			if live[k] {
				c.DeleteEdge(u, v)
				naive.removeEdge(u, v)
				delete(live, k)
			} else {
				c.InsertEdge(u, v)
				naive.addEdge(u, v)
				live[k] = true
			}
			if c.NumComponents() != naive.components() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
