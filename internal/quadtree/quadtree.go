// Package quadtree implements a d-dimensional counting bucket quadtree (a
// 2^d-ary PR tree) with subtree counts. It instantiates the paper's
// "approximate range count" structure of Section 7.3 (the paper plugs in
// Mount & Park [16]): ApproxBallCount(q, rLow, rHigh) returns an integer k
// with
//
//	|B(q, rLow)| ≤ k ≤ |B(q, rHigh)|
//
// in the current point set, which with rLow = ε and rHigh = (1+ρ)ε is exactly
// the query the fully-dynamic core-status structure issues to decide whether
// a point is a core point under ρ-double-approximate semantics. With
// rLow = rHigh the count is exact.
//
// The tree grows its root cube by doubling when points fall outside it, so no
// bounding box needs to be known in advance. Children are stored sparsely (a
// small sorted slice) because 2^d reaches 128 at d = 7 and most internal
// nodes have very few live children.
package quadtree

import (
	"math"

	"dyndbscan/internal/geom"
)

const (
	bucketCap = 16 // leaf capacity before splitting
	maxDepth  = 48 // beyond this depth leaves grow unbounded (co-located points)
)

// Tree is a dynamic counting quadtree. Create with New.
type Tree struct {
	dims int
	root *qnode
	lo   [geom.MaxDims]float64 // root cube lower corner
	side float64               // root cube side length
	size int
}

type entry struct {
	id int64
	pt geom.Point
}

type childRef struct {
	idx uint8 // bit i set = upper half of dimension i
	n   *qnode
}

type qnode struct {
	count    int
	children []childRef // nil AND pts non-nil/empty => leaf
	pts      []entry    // leaf bucket
	leaf     bool
}

// New returns an empty tree over R^dims.
func New(dims int) *Tree {
	return &Tree{dims: dims}
}

// Len returns the number of points stored.
func (t *Tree) Len() int { return t.size }

// Insert adds a point under the given id. Ids need not be unique for
// correctness of counting, but Delete removes by (id, pt), so callers should
// keep them unique.
func (t *Tree) Insert(id int64, pt geom.Point) {
	if t.root == nil {
		t.side = 1
		for i := 0; i < t.dims; i++ {
			t.lo[i] = math.Floor(pt[i])
		}
		t.root = &qnode{leaf: true}
	}
	t.growToCover(pt)
	t.insertAt(t.root, entry{id: id, pt: pt}, t.lo, t.side, 0)
	t.size++
}

// Delete removes the point previously inserted under id at position pt.
// It panics when the point is not present: the clustering layers own their
// bookkeeping and an absent point indicates a bug there.
func (t *Tree) Delete(id int64, pt geom.Point) {
	if t.root == nil || !t.deleteAt(t.root, id, pt, t.lo, t.side) {
		panic("quadtree: delete of unknown point")
	}
	t.size--
}

// ApproxBallCount returns k with |B(q,rLow)| ≤ k ≤ |B(q,rHigh)| over the
// current point set. rLow must be ≤ rHigh.
func (t *Tree) ApproxBallCount(q geom.Point, rLow, rHigh float64) int {
	if t.root == nil {
		return 0
	}
	return t.countAt(t.root, q, rLow*rLow, rHigh*rHigh, t.lo, t.side)
}

// AtLeast answers the thresholded core-status question directly: it returns
// true only when |B(q,rHigh)| ≥ threshold and false only when
// |B(q,rLow)| < threshold (either answer is legal in between — the same
// don't-care band as ApproxBallCount ≥ threshold).
//
// The point of the dedicated method is the early exit: a subtree box lying
// entirely inside B(q,rHigh) contributes its whole count at once, so a query
// point next to a dense cluster resolves in a handful of node visits. The
// plain count query has no such exit and degenerates when a cluster
// straddles the thin [rLow, rHigh] shell — profiling the paper's 5D
// fully-dynamic workload showed exactly that pathology dominating runtime.
func (t *Tree) AtLeast(q geom.Point, rLow, rHigh float64, threshold int) bool {
	if t.root == nil || t.root.count < threshold {
		return false
	}
	acc := 0
	return t.atLeastAt(t.root, q, rLow*rLow, rHigh*rHigh, t.lo, t.side, threshold, &acc)
}

func (t *Tree) atLeastAt(n *qnode, q geom.Point, lowSq, highSq float64, lo [geom.MaxDims]float64, side float64, threshold int, acc *int) bool {
	if n.count == 0 {
		return false
	}
	minSq, maxSq := t.boxDistSq(q, lo, side)
	if minSq > lowSq {
		return false // no mandatory points inside: sound to skip
	}
	if maxSq <= highSq {
		*acc += n.count
		return *acc >= threshold
	}
	if n.leaf {
		for _, e := range n.pts {
			// Counting up to rHigh is legal on both sides of the band and
			// reaches the threshold sooner.
			if geom.DistSq(q, e.pt, t.dims) <= highSq {
				*acc++
				if *acc >= threshold {
					return true
				}
			}
		}
		return false
	}
	half := side / 2
	for _, ch := range n.children {
		if t.atLeastAt(ch.n, q, lowSq, highSq, t.childLo(lo, half, ch.idx), half, threshold, acc) {
			return true
		}
	}
	return false
}

func (t *Tree) countAt(n *qnode, q geom.Point, lowSq, highSq float64, lo [geom.MaxDims]float64, side float64) int {
	if n.count == 0 {
		return 0
	}
	minSq, maxSq := t.boxDistSq(q, lo, side)
	if minSq > lowSq {
		return 0 // no mandatory (≤ rLow) points inside: skipping is sound
	}
	if maxSq <= highSq {
		return n.count // whole box within rHigh: counting all is sound
	}
	if n.leaf {
		c := 0
		for _, e := range n.pts {
			if geom.DistSq(q, e.pt, t.dims) <= lowSq {
				c++
			}
		}
		return c
	}
	half := side / 2
	total := 0
	for _, ch := range n.children {
		total += t.countAt(ch.n, q, lowSq, highSq, t.childLo(lo, half, ch.idx), half)
	}
	return total
}

// boxDistSq returns the squared min and max distances from q to the cube with
// lower corner lo and side length side.
func (t *Tree) boxDistSq(q geom.Point, lo [geom.MaxDims]float64, side float64) (minSq, maxSq float64) {
	for i := 0; i < t.dims; i++ {
		hi := lo[i] + side
		var dMin float64
		switch {
		case q[i] < lo[i]:
			dMin = lo[i] - q[i]
		case q[i] > hi:
			dMin = q[i] - hi
		}
		dMax := math.Max(math.Abs(q[i]-lo[i]), math.Abs(hi-q[i]))
		minSq += dMin * dMin
		maxSq += dMax * dMax
	}
	return minSq, maxSq
}

func (t *Tree) childLo(lo [geom.MaxDims]float64, half float64, idx uint8) [geom.MaxDims]float64 {
	out := lo
	for i := 0; i < t.dims; i++ {
		if idx&(1<<uint(i)) != 0 {
			out[i] += half
		}
	}
	return out
}

func (t *Tree) childIdx(pt geom.Point, lo [geom.MaxDims]float64, half float64) uint8 {
	var idx uint8
	for i := 0; i < t.dims; i++ {
		if pt[i] >= lo[i]+half {
			idx |= 1 << uint(i)
		}
	}
	return idx
}

// growToCover doubles the root cube toward pt until it covers pt.
func (t *Tree) growToCover(pt geom.Point) {
	for {
		inside := true
		for i := 0; i < t.dims; i++ {
			if pt[i] < t.lo[i] || pt[i] >= t.lo[i]+t.side {
				inside = false
				break
			}
		}
		if inside {
			return
		}
		// Grow so that the old cube becomes the child on the side away
		// from pt in each dimension where pt is below the cube.
		var idx uint8
		newLo := t.lo
		for i := 0; i < t.dims; i++ {
			if pt[i] < t.lo[i] {
				newLo[i] -= t.side
				idx |= 1 << uint(i) // old cube sits in the upper half
			}
		}
		oldRoot := t.root
		t.lo = newLo
		t.side *= 2
		if oldRoot.count == 0 {
			continue // empty root: just enlarge the cube
		}
		newRoot := &qnode{count: oldRoot.count, children: []childRef{{idx: idx, n: oldRoot}}}
		t.root = newRoot
	}
}

func (t *Tree) insertAt(n *qnode, e entry, lo [geom.MaxDims]float64, side float64, depth int) {
	n.count++
	if n.leaf {
		n.pts = append(n.pts, e)
		if len(n.pts) > bucketCap && depth < maxDepth {
			t.splitLeaf(n, lo, side, depth)
		}
		return
	}
	half := side / 2
	idx := t.childIdx(e.pt, lo, half)
	for _, ch := range n.children {
		if ch.idx == idx {
			t.insertAt(ch.n, e, t.childLo(lo, half, idx), half, depth+1)
			return
		}
	}
	child := &qnode{leaf: true}
	n.children = append(n.children, childRef{idx: idx, n: child})
	t.insertAt(child, e, t.childLo(lo, half, idx), half, depth+1)
}

func (t *Tree) splitLeaf(n *qnode, lo [geom.MaxDims]float64, side float64, depth int) {
	pts := n.pts
	n.pts = nil
	n.leaf = false
	n.count = 0
	for _, e := range pts {
		t.insertAt(n, e, lo, side, depth)
	}
}

func (t *Tree) deleteAt(n *qnode, id int64, pt geom.Point, lo [geom.MaxDims]float64, side float64) bool {
	if n.leaf {
		for i, e := range n.pts {
			if e.id == id && geom.Equal(e.pt, pt, t.dims) {
				n.pts[i] = n.pts[len(n.pts)-1]
				n.pts = n.pts[:len(n.pts)-1]
				n.count--
				return true
			}
		}
		return false
	}
	half := side / 2
	idx := t.childIdx(pt, lo, half)
	for i, ch := range n.children {
		if ch.idx != idx {
			continue
		}
		if !t.deleteAt(ch.n, id, pt, t.childLo(lo, half, idx), half) {
			return false
		}
		n.count--
		if ch.n.count == 0 {
			n.children[i] = n.children[len(n.children)-1]
			n.children = n.children[:len(n.children)-1]
		}
		if n.count <= bucketCap/2 {
			t.collapse(n)
		}
		return true
	}
	return false
}

// collapse turns a small internal node back into a leaf to keep the tree
// compact under deletions.
func (t *Tree) collapse(n *qnode) {
	pts := make([]entry, 0, n.count)
	var gather func(m *qnode)
	gather = func(m *qnode) {
		if m.leaf {
			pts = append(pts, m.pts...)
			return
		}
		for _, ch := range m.children {
			gather(ch.n)
		}
	}
	gather(n)
	n.leaf = true
	n.children = nil
	n.pts = pts
	n.count = len(pts)
}
