package quadtree

import (
	"fmt"
	"math/rand"
	"testing"

	"dyndbscan/internal/geom"
)

func randPt(rng *rand.Rand, d int, scale float64) geom.Point {
	p := make(geom.Point, d)
	for i := 0; i < d; i++ {
		p[i] = (rng.Float64()*2 - 1) * scale
	}
	return p
}

func exactCount(pts map[int64]geom.Point, d int, q geom.Point, r float64) int {
	c := 0
	for _, p := range pts {
		if geom.DistSq(q, p, d) <= r*r {
			c++
		}
	}
	return c
}

// TestBandContract is the core property: |B(q,rLow)| ≤ k ≤ |B(q,rHigh)|,
// the exact guarantee the fully-dynamic core-status structure needs
// (Section 7.3). Verified under random churn across dimensions and ρ values.
func TestBandContract(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5, 7} {
		for _, rho := range []float64{0, 0.001, 0.5} {
			d, rho := d, rho
			t.Run(fmt.Sprintf("d%d rho%v", d, rho), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(d)*37 + int64(rho*1000)))
				tr := New(d)
				pts := make(map[int64]geom.Point)
				next := int64(0)
				const rLow = 4.0
				rHigh := rLow * (1 + rho)
				for op := 0; op < 3000; op++ {
					switch r := rng.Float64(); {
					case r < 0.55:
						p := randPt(rng, d, 25)
						tr.Insert(next, p)
						pts[next] = p
						next++
					case r < 0.75 && len(pts) > 0:
						for id, p := range pts {
							tr.Delete(id, p)
							delete(pts, id)
							break
						}
					default:
						q := randPt(rng, d, 30)
						k := tr.ApproxBallCount(q, rLow, rHigh)
						lo := exactCount(pts, d, q, rLow)
						hi := exactCount(pts, d, q, rHigh)
						if k < lo || k > hi {
							t.Fatalf("op %d: count %d outside band [%d,%d]", op, k, lo, hi)
						}
					}
					if tr.Len() != len(pts) {
						t.Fatalf("op %d: Len=%d want %d", op, tr.Len(), len(pts))
					}
				}
			})
		}
	}
}

// TestExactWhenBandDegenerate: rLow == rHigh must give exact counts
// (the ρ = 0 configuration used by 2D exact DBSCAN).
func TestExactWhenBandDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := New(2)
	pts := make(map[int64]geom.Point)
	for i := int64(0); i < 800; i++ {
		p := randPt(rng, 2, 40)
		tr.Insert(i, p)
		pts[i] = p
	}
	for i := 0; i < 1500; i++ {
		q := randPt(rng, 2, 50)
		r := rng.Float64() * 20
		if got, want := tr.ApproxBallCount(q, r, r), exactCount(pts, 2, q, r); got != want {
			t.Fatalf("query %d: exact count %d, want %d", i, got, want)
		}
	}
}

// TestRootGrowth inserts points spanning wildly different magnitudes so the
// root cube must double many times in both directions.
func TestRootGrowth(t *testing.T) {
	tr := New(2)
	pts := map[int64]geom.Point{
		0: {0.1, 0.1},
		1: {1e6, 1e6},
		2: {-1e6, 1e6},
		3: {-1e6, -1e6},
		4: {1e-9, -1e-9},
	}
	for id, p := range pts {
		tr.Insert(id, p)
	}
	if got := tr.ApproxBallCount(geom.Point{0, 0}, 1, 1); got != 2 {
		t.Fatalf("near-origin count = %d, want 2", got)
	}
	if got := tr.ApproxBallCount(geom.Point{0, 0}, 3e6, 3e6); got != 5 {
		t.Fatalf("everything count = %d, want 5", got)
	}
	for id, p := range pts {
		tr.Delete(id, p)
	}
	if tr.Len() != 0 {
		t.Fatal("deletes failed")
	}
}

// TestCoLocatedPoints: many duplicates must not blow the depth cap and must
// still be counted exactly.
func TestCoLocatedPoints(t *testing.T) {
	tr := New(3)
	p := geom.Point{1, 2, 3}
	const n = 500
	for i := int64(0); i < n; i++ {
		tr.Insert(i, p)
	}
	if got := tr.ApproxBallCount(p, 0.5, 0.5); got != n {
		t.Fatalf("duplicate count = %d, want %d", got, n)
	}
	for i := int64(0); i < n; i++ {
		tr.Delete(i, p)
	}
	if tr.Len() != 0 {
		t.Fatal("duplicate deletes failed")
	}
}

// TestAtLeastContract: the thresholded query must agree with the band —
// true only when |B(q,rHigh)| ≥ t, false only when |B(q,rLow)| < t.
// Exercised under churn across dimensions, thresholds and ρ values.
func TestAtLeastContract(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		for _, rho := range []float64{0, 0.001, 0.5} {
			d, rho := d, rho
			t.Run(fmt.Sprintf("d%d rho%v", d, rho), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(d)*91 + int64(rho*1000)))
				tr := New(d)
				pts := make(map[int64]geom.Point)
				next := int64(0)
				const rLow = 5.0
				rHigh := rLow * (1 + rho)
				for op := 0; op < 2500; op++ {
					switch r := rng.Float64(); {
					case r < 0.55:
						p := randPt(rng, d, 20)
						tr.Insert(next, p)
						pts[next] = p
						next++
					case r < 0.7 && len(pts) > 0:
						for id, p := range pts {
							tr.Delete(id, p)
							delete(pts, id)
							break
						}
					default:
						q := randPt(rng, d, 25)
						threshold := 1 + rng.Intn(20)
						got := tr.AtLeast(q, rLow, rHigh, threshold)
						lo := exactCount(pts, d, q, rLow)
						hi := exactCount(pts, d, q, rHigh)
						if got && hi < threshold {
							t.Fatalf("op %d: AtLeast true but |B(rHigh)|=%d < %d", op, hi, threshold)
						}
						if !got && lo >= threshold {
							t.Fatalf("op %d: AtLeast false but |B(rLow)|=%d ≥ %d", op, lo, threshold)
						}
					}
				}
			})
		}
	}
}

// TestAtLeastDegenerate covers empty trees and extreme thresholds.
func TestAtLeastDegenerate(t *testing.T) {
	tr := New(2)
	if tr.AtLeast(geom.Point{0, 0}, 1, 1, 1) {
		t.Fatal("empty tree cannot reach any threshold")
	}
	tr.Insert(1, geom.Point{0, 0})
	if !tr.AtLeast(geom.Point{0, 0}, 1, 1, 1) {
		t.Fatal("threshold 1 with one point at the center")
	}
	if tr.AtLeast(geom.Point{0, 0}, 1, 1, 2) {
		t.Fatal("threshold 2 with one point")
	}
	if tr.AtLeast(geom.Point{10, 10}, 1, 1, 1) {
		t.Fatal("point far outside the ball")
	}
}

func TestDeleteUnknownPanics(t *testing.T) {
	tr := New(2)
	tr.Insert(1, geom.Point{0, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Delete(2, geom.Point{5, 5})
}

// TestHeavyChurn interleaves inserts and deletes long enough to trigger many
// splits and collapses, then checks a dense set of exact queries.
func TestHeavyChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr := New(2)
	pts := make(map[int64]geom.Point)
	next := int64(0)
	for round := 0; round < 20; round++ {
		for i := 0; i < 300; i++ {
			p := randPt(rng, 2, 10) // dense region → deep subdivision
			tr.Insert(next, p)
			pts[next] = p
			next++
		}
		for i := 0; i < 250 && len(pts) > 0; i++ {
			for id, p := range pts {
				tr.Delete(id, p)
				delete(pts, id)
				break
			}
		}
		q := randPt(rng, 2, 10)
		r := rng.Float64() * 8
		if got, want := tr.ApproxBallCount(q, r, r), exactCount(pts, 2, q, r); got != want {
			t.Fatalf("round %d: got %d want %d", round, got, want)
		}
	}
}
