package quadtree

import (
	"math"
	"testing"
	"testing/quick"

	"dyndbscan/internal/geom"
)

// TestQuickBand: for arbitrary point sets, queries and deletions, the count
// stays inside [|B(q,rLow)|, |B(q,rHigh)|] — the exact contract Section 7.3
// requires from the approximate range count structure.
func TestQuickBand(t *testing.T) {
	f := func(coords []float64, deletes []uint8, qx, qy, r, band float64) bool {
		tr := New(2)
		live := make(map[int64]geom.Point)
		for i := 0; i+1 < len(coords); i += 2 {
			id := int64(i / 2)
			p := geom.Point{fold(coords[i]), fold(coords[i+1])}
			tr.Insert(id, p)
			live[id] = p
		}
		for _, d := range deletes {
			id := int64(d)
			if p, ok := live[id]; ok {
				tr.Delete(id, p)
				delete(live, id)
			}
		}
		if tr.Len() != len(live) {
			return false
		}
		rLow := math.Abs(fold(r))
		rHigh := rLow * (1 + math.Abs(fold(band))/2000)
		q := geom.Point{fold(qx), fold(qy)}
		k := tr.ApproxBallCount(q, rLow, rHigh)
		lo, hi := 0, 0
		for _, p := range live {
			d := geom.DistSq(q, p, 2)
			if d <= rLow*rLow {
				lo++
			}
			if d <= rHigh*rHigh {
				hi++
			}
		}
		return k >= lo && k <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func fold(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1000)
}
