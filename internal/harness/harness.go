// Package harness executes workloads against the dynamic clusterers and
// measures them the way Section 8 of the paper does:
//
//   - avgcost(t)    = (1/t) Σ_{i≤t} cost[i], the running average cost per
//     operation (updates and queries);
//   - maxupdcost(t) = max_{i≤t} updcost[i], the running maximum update cost
//     (queries excluded);
//   - the average workload cost avgcost(W) over the whole run.
//
// Each figure of the evaluation section has a runner that reproduces its
// series as a printable table (Fig 8–15). Runs support a wall-clock budget,
// mirroring the paper's termination of IncDBSCAN after three hours on the
// 5D/7D fully-dynamic workloads; timed-out runs are reported as DNF.
package harness

import (
	"fmt"
	"strings"
	"time"

	"dyndbscan/internal/core"
	"dyndbscan/internal/geom"
	"dyndbscan/internal/workload"
)

// Clusterer is the algorithm surface the harness drives.
type Clusterer interface {
	Insert(pt geom.Point) (core.PointID, error)
	Delete(id core.PointID) error
	GroupBy(q []core.PointID) (core.Result, error)
}

// SeriesPoint is one checkpointed measurement.
type SeriesPoint struct {
	Ops   int     // operations completed
	Value float64 // microseconds
}

// RunResult holds the measurements of one workload execution.
type RunResult struct {
	Algo      string
	Completed bool // false when the time budget expired
	OpsDone   int

	AvgSeries    []SeriesPoint // avgcost(t) at checkpoints
	MaxUpdSeries []SeriesPoint // maxupdcost(t) at checkpoints

	AvgWorkloadCost float64 // µs per operation over the whole run
	AvgUpdateCost   float64 // µs per update
	AvgQueryCost    float64 // µs per query
	MaxUpdateCost   float64 // µs
	Wall            time.Duration
}

// RunOpts configures one execution.
type RunOpts struct {
	// Checkpoints is the number of evenly spaced measurement points
	// (the paper's plots use about 10). Minimum 1.
	Checkpoints int
	// Budget bounds wall-clock time; zero means unlimited.
	Budget time.Duration
}

// Run replays w against cl and measures it.
func Run(algo string, cl Clusterer, w *workload.Workload, opts RunOpts) RunResult {
	if opts.Checkpoints < 1 {
		opts.Checkpoints = 10
	}
	res := RunResult{Algo: algo, Completed: true}
	every := len(w.Ops) / opts.Checkpoints
	if every < 1 {
		every = 1
	}
	idBySeq := make([]core.PointID, w.Inserts)
	seq := 0
	var totalCost, updateCost, queryCost float64 // µs
	var updates, queries int
	start := time.Now()
	var qbuf []core.PointID

	for i, op := range w.Ops {
		var elapsed float64
		switch op.Kind {
		case workload.OpInsert:
			t0 := time.Now()
			id, err := cl.Insert(op.Pt)
			elapsed = float64(time.Since(t0).Nanoseconds()) / 1e3
			if err != nil {
				panic(fmt.Sprintf("harness: insert failed: %v", err))
			}
			idBySeq[seq] = id
			seq++
			updates++
			updateCost += elapsed
			if elapsed > res.MaxUpdateCost {
				res.MaxUpdateCost = elapsed
			}
		case workload.OpDelete:
			t0 := time.Now()
			err := cl.Delete(idBySeq[op.Target])
			elapsed = float64(time.Since(t0).Nanoseconds()) / 1e3
			if err != nil {
				panic(fmt.Sprintf("harness: delete failed: %v", err))
			}
			updates++
			updateCost += elapsed
			if elapsed > res.MaxUpdateCost {
				res.MaxUpdateCost = elapsed
			}
		case workload.OpQuery:
			qbuf = qbuf[:0]
			for _, s := range op.Query {
				qbuf = append(qbuf, idBySeq[s])
			}
			t0 := time.Now()
			_, err := cl.GroupBy(qbuf)
			elapsed = float64(time.Since(t0).Nanoseconds()) / 1e3
			if err != nil {
				panic(fmt.Sprintf("harness: query failed: %v", err))
			}
			queries++
			queryCost += elapsed
		}
		totalCost += elapsed
		res.OpsDone = i + 1
		if (i+1)%every == 0 || i == len(w.Ops)-1 {
			res.AvgSeries = append(res.AvgSeries, SeriesPoint{Ops: i + 1, Value: totalCost / float64(i+1)})
			res.MaxUpdSeries = append(res.MaxUpdSeries, SeriesPoint{Ops: i + 1, Value: res.MaxUpdateCost})
		}
		// The budget is enforced on a fine grain, not just at checkpoints: a
		// slow contestant (IncDBSCAN at large ε or high d) might otherwise
		// take minutes to reach the first checkpoint.
		if opts.Budget > 0 && (i+1)%1024 == 0 && time.Since(start) > opts.Budget {
			res.Completed = i == len(w.Ops)-1
			break
		}
	}
	res.Wall = time.Since(start)
	if res.OpsDone > 0 {
		res.AvgWorkloadCost = totalCost / float64(res.OpsDone)
	}
	if updates > 0 {
		res.AvgUpdateCost = updateCost / float64(updates)
	}
	if queries > 0 {
		res.AvgQueryCost = queryCost / float64(queries)
	}
	return res
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Caption string
	Header  []string
	Rows    [][]string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// fmtMicros renders a µs measurement compactly.
func fmtMicros(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// dnf marks did-not-finish cells.
func dnf(r RunResult, v float64) string {
	if !r.Completed {
		return fmtMicros(v) + "*"
	}
	return fmtMicros(v)
}
