package harness

import (
	"strings"
	"testing"
	"time"

	"dyndbscan/internal/core"
	"dyndbscan/internal/workload"
)

func smallWorkload(t *testing.T, d int, insFrac float64) *workload.Workload {
	t.Helper()
	p := workload.DefaultParams(d, 2000, 42)
	p.InsFrac = insFrac
	p.Fqry = 100
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunMeasures(t *testing.T) {
	w := smallWorkload(t, 2, 5.0/6.0)
	cl, err := core.NewFullyDynamic(core.Config{Dims: 2, Eps: 200, MinPts: 10, Rho: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	res := Run("Double-Approx", cl, w, RunOpts{Checkpoints: 10})
	if !res.Completed || res.OpsDone != len(w.Ops) {
		t.Fatalf("run incomplete: %+v", res)
	}
	if len(res.AvgSeries) < 10 || len(res.MaxUpdSeries) < 10 {
		t.Fatalf("checkpoints missing: %d/%d", len(res.AvgSeries), len(res.MaxUpdSeries))
	}
	if res.AvgWorkloadCost <= 0 || res.MaxUpdateCost <= 0 || res.AvgUpdateCost <= 0 {
		t.Fatalf("implausible costs: %+v", res)
	}
	if res.AvgQueryCost <= 0 {
		t.Fatalf("queries not measured: %+v", res)
	}
	// avgcost is cumulative: the series must be positive and the final value
	// must equal the workload average.
	last := res.AvgSeries[len(res.AvgSeries)-1]
	if last.Ops != len(w.Ops) {
		t.Fatalf("last checkpoint at %d ops, want %d", last.Ops, len(w.Ops))
	}
	if diff := last.Value - res.AvgWorkloadCost; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("final avgcost %v != workload avg %v", last.Value, res.AvgWorkloadCost)
	}
	// maxupdcost is monotone.
	for i := 1; i < len(res.MaxUpdSeries); i++ {
		if res.MaxUpdSeries[i].Value < res.MaxUpdSeries[i-1].Value {
			t.Fatal("maxupdcost series not monotone")
		}
	}
}

func TestRunBudget(t *testing.T) {
	p := workload.DefaultParams(2, 30000, 1)
	p.InsFrac = 1
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := core.NewIncDBSCAN(core.Config{Dims: 2, Eps: 1600, MinPts: 10})
	res := Run("IncDBSCAN", cl, w, RunOpts{Checkpoints: 100, Budget: 30 * time.Millisecond})
	if res.Completed {
		t.Skip("machine too fast for the budget test at this scale")
	}
	if res.OpsDone >= len(w.Ops) {
		t.Fatal("budget-truncated run claims all ops done")
	}
}

func TestSeriesTableShape(t *testing.T) {
	w := smallWorkload(t, 2, 1.0)
	var runs []RunResult
	for _, name := range []string{"A", "B"} {
		cl, _ := core.NewSemiDynamic(core.Config{Dims: 2, Eps: 200, MinPts: 10, Rho: 0.001})
		runs = append(runs, Run(name, cl, w, RunOpts{Checkpoints: 10}))
	}
	tables := seriesTable("test", "caption", runs)
	if len(tables) != 2 {
		t.Fatalf("want avg+max tables, got %d", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Header) != 3 {
			t.Fatalf("header %v", tb.Header)
		}
		if len(tb.Rows) < 10 {
			t.Fatalf("rows %d", len(tb.Rows))
		}
		text := tb.Format()
		if !strings.Contains(text, "test") || !strings.Contains(text, "A") {
			t.Fatal("format output incomplete")
		}
		csv := tb.CSV()
		if !strings.HasPrefix(csv, "ops,A,B") {
			t.Fatalf("csv header: %q", csv[:20])
		}
	}
}

// TestFiguresSmoke runs every figure at a tiny scale and sanity-checks the
// tables: right algorithms, full ε/fqry/%ins grids, numeric cells.
func TestFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test is slow")
	}
	o := DefaultOptions()
	o.N = 1200
	o.Budget = 20 * time.Second
	checks := map[string]struct {
		minTables int
		contains  []string
	}{
		"table1": {1, []string{"rho-double-approx", "fully dynamic"}},
		"table2": {1, []string{"%ins", "fqry"}},
		"fig8":   {2, []string{"2d-Semi-Exact", "Semi-Approx", "IncDBSCAN"}},
		"fig9":   {6, []string{"Semi-Approx", "IncDBSCAN"}},
		"fig10":  {4, []string{"50", "800"}},
		"fig11":  {4, []string{"0.01", "0.10"}},
		"fig12":  {2, []string{"2d-Full-Exact", "Double-Approx", "IncDBSCAN"}},
		"fig13":  {6, []string{"Double-Approx"}},
		"fig14":  {4, []string{"50", "800"}},
		"fig15":  {4, []string{"2/3", "10/11"}},
	}
	for name, run := range o.Figures() {
		want := checks[name]
		tables := run()
		if len(tables) < want.minTables {
			t.Fatalf("%s: %d tables, want ≥ %d", name, len(tables), want.minTables)
		}
		all := ""
		for _, tb := range tables {
			all += tb.Format()
			if len(tb.Rows) == 0 {
				t.Fatalf("%s: empty table %q", name, tb.Title)
			}
		}
		for _, s := range want.contains {
			if !strings.Contains(all, s) {
				t.Fatalf("%s output missing %q", name, s)
			}
		}
	}
}
