package harness

import "fmt"

// Table1 reproduces Table 1 of the paper: the dynamic hardness matrix of
// DBSCAN variants. The table itself is a theoretical result; the lower-bound
// rows rest on the USEC reduction of Lemma 2, which this repository
// validates executably (see TestUSECLSReduction in internal/core), and the
// upper-bound rows are the algorithms whose measured behavior Figures 8–15
// report.
func Table1() Table {
	return Table{
		Title: "Table 1 — dynamic hardness of DBSCAN variants",
		Caption: "†subject to the hardness of unit-spherical emptiness checking (USEC);\n" +
			"lower bounds demonstrated executably by the Lemma 2 reduction test (go test -run TestUSECLS ./internal/core)",
		Header: []string{"method", "update", "C-group-by query", "remark", "implementation"},
		Rows: [][]string{
			{"exact DBSCAN d=2", "O~(1)", "O~(|Q|)", "fully dynamic", "FullyDynamic{Rho:0} / SemiDynamic{Rho:0}"},
			{"exact DBSCAN d≥3", "Ω(n^1/3) or Ω(|Q|^4/3)†", "", "even insertions only", "lower bound (corollary of Gan&Tao'15)"},
			{"rho-approx d≥3", "O~(1) insertion", "O~(|Q|)", "insertions only", "SemiDynamic"},
			{"rho-approx d≥3", "Ω~(n^1/3) update or query†", "", "fully dynamic, even |Q|=2", "lower bound (Theorem 2; Lemma 2 reduction)"},
			{"rho-double-approx", "O~(1)", "O~(|Q|)", "fully dynamic", "FullyDynamic"},
		},
	}
}

// Table2 reproduces Table 2 of the paper: the workload parameter grid
// (defaults in the paper are marked). These are exactly the values the
// figure runners sweep.
func Table2(o Options) Table {
	return Table{
		Title:   "Table 2 — workload parameters (paper defaults marked *)",
		Caption: fmt.Sprintf("this run: N=%d, MinPts=%d, rho=%g (paper: N=10M, MinPts=10, rho=0.001)", o.N, o.MinPts, o.Rho),
		Header:  []string{"parameter", "values"},
		Rows: [][]string{
			{"d", "2*, 3, 5, 7"},
			{"eps", "50d, 100d*, 200d, 400d, 800d"},
			{"%ins", "2/3, 4/5, 5/6*, 8/9, 10/11"},
			{"fqry", "0.01N, 0.02N, 0.03N*, ..., 0.1N"},
		},
	}
}
