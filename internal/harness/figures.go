package harness

import (
	"fmt"
	"time"

	"dyndbscan/internal/core"
	"dyndbscan/internal/workload"
)

// Options scales the experiments. The paper runs N = 10M updates on a 2017
// Core i7; the default here is laptop-scale and every figure accepts any N.
type Options struct {
	N       int           // updates per workload (paper: 10_000_000)
	Seed    int64         // workload seed
	Budget  time.Duration // per-run wall budget; 0 = unlimited (paper cut IncDBSCAN at 3h)
	MinPts  int           // paper: 10
	Rho     float64       // paper: 0.001
	Verbose func(format string, args ...any)
}

// DefaultOptions returns laptop-scale settings: N = 100k updates, 60 s
// budget per run, and the paper's MinPts = 10, ρ = 0.001.
func DefaultOptions() Options {
	return Options{N: 100_000, Seed: 1, Budget: 60 * time.Second, MinPts: 10, Rho: 0.001}
}

func (o Options) log(format string, args ...any) {
	if o.Verbose != nil {
		o.Verbose(format, args...)
	}
}

// epsDefault is the paper's default ε = 100·d.
func epsDefault(d int) float64 { return 100 * float64(d) }

// algoSpec names one algorithm configuration of Section 8.1.
type algoSpec struct {
	name string
	make func(cfg core.Config) (Clusterer, error)
}

func semiSpec(name string, rho float64) algoSpec {
	return algoSpec{name: name, make: func(cfg core.Config) (Clusterer, error) {
		cfg.Rho = rho
		return core.NewSemiDynamic(cfg)
	}}
}

func fullSpec(name string, rho float64) algoSpec {
	return algoSpec{name: name, make: func(cfg core.Config) (Clusterer, error) {
		cfg.Rho = rho
		return core.NewFullyDynamic(cfg)
	}}
}

func incSpec() algoSpec {
	return algoSpec{name: "IncDBSCAN", make: func(cfg core.Config) (Clusterer, error) {
		return core.NewIncDBSCAN(cfg)
	}}
}

// semiAlgos2D are the three contestants of Figure 8/10a/11a.
func (o Options) semiAlgos2D() []algoSpec {
	return []algoSpec{semiSpec("2d-Semi-Exact", 0), semiSpec("Semi-Approx", o.Rho), incSpec()}
}

// fullAlgos2D are the three contestants of Figure 12/14a.
func (o Options) fullAlgos2D() []algoSpec {
	return []algoSpec{fullSpec("2d-Full-Exact", 0), fullSpec("Double-Approx", o.Rho), incSpec()}
}

// runOne builds a fresh clusterer and replays the workload.
func (o Options) runOne(spec algoSpec, cfg core.Config, w *workload.Workload) RunResult {
	cl, err := spec.make(cfg)
	if err != nil {
		panic(fmt.Sprintf("harness: %s: %v", spec.name, err))
	}
	o.log("  running %s (d=%d eps=%.0f N=%d)...", spec.name, cfg.Dims, cfg.Eps, o.N)
	res := Run(spec.name, cl, w, RunOpts{Checkpoints: 10, Budget: o.Budget})
	o.log("  %-15s avg=%sµs maxupd=%sµs wall=%v done=%v",
		spec.name, fmtMicros(res.AvgWorkloadCost), fmtMicros(res.MaxUpdateCost), res.Wall.Round(time.Millisecond), res.Completed)
	return res
}

func (o Options) workload(d int, eps float64, insFrac float64, fqryFrac float64) *workload.Workload {
	p := workload.DefaultParams(d, o.N, o.Seed)
	p.InsFrac = insFrac
	p.Fqry = int(fqryFrac * float64(o.N))
	if p.Fqry < 1 {
		p.Fqry = 1
	}
	w, err := workload.Generate(p)
	if err != nil {
		panic(err)
	}
	_ = eps // eps configures the clusterer, not the data
	return w
}

// seriesTable renders avgcost(t) and maxupdcost(t) for a set of runs.
func seriesTable(title, caption string, runs []RunResult) []Table {
	avg := Table{Title: title + " — average cost per operation (µs)", Caption: caption,
		Header: []string{"ops"}}
	mx := Table{Title: title + " — maximum update cost (µs)", Caption: caption,
		Header: []string{"ops"}}
	for _, r := range runs {
		avg.Header = append(avg.Header, r.Algo)
		mx.Header = append(mx.Header, r.Algo)
	}
	if len(runs) == 0 {
		return []Table{avg, mx}
	}
	// Use the checkpoint grid of the longest completed run.
	grid := runs[0].AvgSeries
	for _, r := range runs {
		if len(r.AvgSeries) > len(grid) {
			grid = r.AvgSeries
		}
	}
	for i, cp := range grid {
		avgRow := []string{fmt.Sprintf("%d", cp.Ops)}
		maxRow := []string{fmt.Sprintf("%d", cp.Ops)}
		for _, r := range runs {
			if i < len(r.AvgSeries) {
				avgRow = append(avgRow, fmtMicros(r.AvgSeries[i].Value))
				maxRow = append(maxRow, fmtMicros(r.MaxUpdSeries[i].Value))
			} else {
				avgRow = append(avgRow, "DNF")
				maxRow = append(maxRow, "DNF")
			}
		}
		avg.Rows = append(avg.Rows, avgRow)
		mx.Rows = append(mx.Rows, maxRow)
	}
	return []Table{avg, mx}
}

const (
	defaultInsFrac  = 5.0 / 6.0
	defaultFqryFrac = 0.03
)

// Fig8 reproduces Figure 8: semi-dynamic algorithms in 2D, avgcost(t) and
// maxupdcost(t) over an insertion-only workload.
func (o Options) Fig8() []Table {
	cfg := core.Config{Dims: 2, Eps: epsDefault(2), MinPts: o.MinPts}
	w := o.workload(2, cfg.Eps, 1.0, defaultFqryFrac)
	var runs []RunResult
	for _, spec := range o.semiAlgos2D() {
		runs = append(runs, o.runOne(spec, cfg, w))
	}
	return seriesTable("Figure 8 (semi-dynamic, 2D)",
		fmt.Sprintf("insert-only, N=%d, eps=%.0f, MinPts=%d, rho=%g ('*' marks budget-truncated runs)",
			o.N, cfg.Eps, o.MinPts, o.Rho), runs)
}

// Fig9 reproduces Figure 9: semi-dynamic algorithms in d = 3, 5, 7.
func (o Options) Fig9() []Table {
	var out []Table
	for _, d := range []int{3, 5, 7} {
		cfg := core.Config{Dims: d, Eps: epsDefault(d), MinPts: o.MinPts}
		w := o.workload(d, cfg.Eps, 1.0, defaultFqryFrac)
		runs := []RunResult{
			o.runOne(semiSpec("Semi-Approx", o.Rho), cfg, w),
			o.runOne(incSpec(), cfg, w),
		}
		out = append(out, seriesTable(fmt.Sprintf("Figure 9 (semi-dynamic, %dD)", d),
			fmt.Sprintf("insert-only, N=%d, eps=%.0f", o.N, cfg.Eps), runs)...)
	}
	return out
}

// epsSweep runs a set of algorithms across the ε grid of Table 2 and
// reports avg workload cost, as Figures 10 and 14 do.
func (o Options) epsSweep(title string, d int, specs []algoSpec, insFrac float64) Table {
	tb := Table{
		Title:   title,
		Caption: fmt.Sprintf("avg workload cost (µs) vs eps, d=%d, N=%d ('*' = budget-truncated)", d, o.N),
		Header:  []string{"eps/d"},
	}
	for _, s := range specs {
		tb.Header = append(tb.Header, s.name)
	}
	for _, mult := range []float64{50, 100, 200, 400, 800} {
		eps := mult * float64(d)
		cfg := core.Config{Dims: d, Eps: eps, MinPts: o.MinPts}
		w := o.workload(d, eps, insFrac, defaultFqryFrac)
		row := []string{fmt.Sprintf("%.0f", mult)}
		for _, s := range specs {
			r := o.runOne(s, cfg, w)
			row = append(row, dnf(r, r.AvgWorkloadCost))
		}
		tb.Rows = append(tb.Rows, row)
	}
	return tb
}

// Fig10 reproduces Figure 10: semi-dynamic avg workload cost vs ε.
func (o Options) Fig10() []Table {
	out := []Table{o.epsSweep("Figure 10a (semi-dynamic vs eps, 2D)", 2, o.semiAlgos2D(), 1.0)}
	for _, d := range []int{3, 5, 7} {
		out = append(out, o.epsSweep(fmt.Sprintf("Figure 10b (semi-dynamic vs eps, %dD)", d), d,
			[]algoSpec{semiSpec("Semi-Approx", o.Rho), incSpec()}, 1.0))
	}
	return out
}

// fqrySweep reproduces the query-frequency experiments of Figure 11.
func (o Options) fqrySweep(title string, d int, specs []algoSpec) Table {
	tb := Table{
		Title:   title,
		Caption: fmt.Sprintf("avg workload cost (µs) vs query frequency, d=%d, N=%d", d, o.N),
		Header:  []string{"fqry/N"},
	}
	for _, s := range specs {
		tb.Header = append(tb.Header, s.name)
	}
	cfg := core.Config{Dims: d, Eps: epsDefault(d), MinPts: o.MinPts}
	for _, frac := range []float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.10} {
		w := o.workload(d, cfg.Eps, 1.0, frac)
		row := []string{fmt.Sprintf("%.2f", frac)}
		for _, s := range specs {
			r := o.runOne(s, cfg, w)
			row = append(row, dnf(r, r.AvgWorkloadCost))
		}
		tb.Rows = append(tb.Rows, row)
	}
	return tb
}

// Fig11 reproduces Figure 11: semi-dynamic avg workload cost vs fqry.
func (o Options) Fig11() []Table {
	out := []Table{o.fqrySweep("Figure 11a (semi-dynamic vs fqry, 2D)", 2, o.semiAlgos2D())}
	for _, d := range []int{3, 5, 7} {
		out = append(out, o.fqrySweep(fmt.Sprintf("Figure 11b (semi-dynamic vs fqry, %dD)", d), d,
			[]algoSpec{semiSpec("Semi-Approx", o.Rho), incSpec()}))
	}
	return out
}

// Fig12 reproduces Figure 12: fully-dynamic algorithms in 2D.
func (o Options) Fig12() []Table {
	cfg := core.Config{Dims: 2, Eps: epsDefault(2), MinPts: o.MinPts}
	w := o.workload(2, cfg.Eps, defaultInsFrac, defaultFqryFrac)
	var runs []RunResult
	for _, spec := range o.fullAlgos2D() {
		runs = append(runs, o.runOne(spec, cfg, w))
	}
	return seriesTable("Figure 12 (fully-dynamic, 2D)",
		fmt.Sprintf("%%ins=5/6, N=%d, eps=%.0f, MinPts=%d, rho=%g", o.N, cfg.Eps, o.MinPts, o.Rho), runs)
}

// Fig13 reproduces Figure 13: fully-dynamic algorithms in d = 3, 5, 7.
func (o Options) Fig13() []Table {
	var out []Table
	for _, d := range []int{3, 5, 7} {
		cfg := core.Config{Dims: d, Eps: epsDefault(d), MinPts: o.MinPts}
		w := o.workload(d, cfg.Eps, defaultInsFrac, defaultFqryFrac)
		runs := []RunResult{
			o.runOne(fullSpec("Double-Approx", o.Rho), cfg, w),
			o.runOne(incSpec(), cfg, w),
		}
		out = append(out, seriesTable(fmt.Sprintf("Figure 13 (fully-dynamic, %dD)", d),
			fmt.Sprintf("%%ins=5/6, N=%d, eps=%.0f", o.N, cfg.Eps), runs)...)
	}
	return out
}

// Fig14 reproduces Figure 14: fully-dynamic avg workload cost vs ε.
func (o Options) Fig14() []Table {
	out := []Table{o.epsSweep("Figure 14a (fully-dynamic vs eps, 2D)", 2, o.fullAlgos2D(), defaultInsFrac)}
	for _, d := range []int{3, 5, 7} {
		specs := []algoSpec{fullSpec("Double-Approx", o.Rho)}
		if d == 3 {
			specs = append(specs, incSpec()) // the paper has no IncDBSCAN results for d=5,7
		}
		out = append(out, o.epsSweep(fmt.Sprintf("Figure 14b (fully-dynamic vs eps, %dD)", d), d, specs, defaultInsFrac))
	}
	return out
}

// Fig15 reproduces Figure 15: fully-dynamic avg workload cost vs %ins.
func (o Options) Fig15() []Table {
	fracs := []struct {
		label string
		v     float64
	}{
		{"2/3", 2.0 / 3.0}, {"4/5", 4.0 / 5.0}, {"5/6", 5.0 / 6.0},
		{"8/9", 8.0 / 9.0}, {"10/11", 10.0 / 11.0},
	}
	var out []Table
	build := func(title string, d int, specs []algoSpec) {
		tb := Table{
			Title:   title,
			Caption: fmt.Sprintf("avg workload cost (µs) vs insertion percentage, d=%d, N=%d", d, o.N),
			Header:  []string{"%ins"},
		}
		for _, s := range specs {
			tb.Header = append(tb.Header, s.name)
		}
		cfg := core.Config{Dims: d, Eps: epsDefault(d), MinPts: o.MinPts}
		for _, fr := range fracs {
			w := o.workload(d, cfg.Eps, fr.v, defaultFqryFrac)
			row := []string{fr.label}
			for _, s := range specs {
				r := o.runOne(s, cfg, w)
				row = append(row, dnf(r, r.AvgWorkloadCost))
			}
			tb.Rows = append(tb.Rows, row)
		}
		out = append(out, tb)
	}
	build("Figure 15a (fully-dynamic vs %ins, 2D)", 2, o.fullAlgos2D())
	for _, d := range []int{3, 5, 7} {
		specs := []algoSpec{fullSpec("Double-Approx", o.Rho)}
		if d == 3 {
			specs = append(specs, incSpec())
		}
		build(fmt.Sprintf("Figure 15b (fully-dynamic vs %%ins, %dD)", d), d, specs)
	}
	return out
}

// Figures maps figure/table names to their runners.
func (o Options) Figures() map[string]func() []Table {
	return map[string]func() []Table{
		"table1": func() []Table { return []Table{Table1()} },
		"table2": func() []Table { return []Table{Table2(o)} },
		"fig8":   o.Fig8,
		"fig9":   o.Fig9,
		"fig10":  o.Fig10,
		"fig11":  o.Fig11,
		"fig12":  o.Fig12,
		"fig13":  o.Fig13,
		"fig14":  o.Fig14,
		"fig15":  o.Fig15,
	}
}
