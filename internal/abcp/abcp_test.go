package abcp

import (
	"fmt"
	"math/rand"
	"testing"

	"dyndbscan/internal/geom"
)

// side is a test model of one cell's core set with an adversarially lazy
// probe: it must return a node when one is within rLow, may return any node
// within rHigh otherwise, and the adversary randomly chooses among legal
// answers in the don't-care band.
type side struct {
	list  *List
	d     int
	rLow  float64
	rHigh float64
	rng   *rand.Rand
}

func (s *side) probe(q geom.Point) (*Node, bool) {
	var mandatory, optional []*Node
	for n := s.list.Head(); n != nil; n = n.Next() {
		d := geom.Dist(q, n.Pt, s.d)
		switch {
		case d <= s.rLow:
			mandatory = append(mandatory, n)
		case d <= s.rHigh:
			optional = append(optional, n)
		}
	}
	if len(mandatory) > 0 {
		// Any point within rHigh is a legal proof; be adversarial about it.
		pool := append(append([]*Node{}, mandatory...), optional...)
		return pool[s.rng.Intn(len(pool))], true
	}
	if len(optional) > 0 && s.rng.Intn(2) == 0 {
		return optional[s.rng.Intn(len(optional))], true
	}
	return nil, false
}

type harness struct {
	t     *testing.T
	d     int
	rLow  float64
	rHigh float64
	sides [2]*side
	inst  *Instance
	nodes [2]map[*Node]bool
}

func newHarness(t *testing.T, rng *rand.Rand, d int, rho float64, initial [2][]geom.Point) *harness {
	h := &harness{t: t, d: d, rLow: 4, rHigh: 4 * (1 + rho)}
	for i := 0; i < 2; i++ {
		h.sides[i] = &side{list: NewList(), d: d, rLow: h.rLow, rHigh: h.rHigh, rng: rng}
		h.nodes[i] = make(map[*Node]bool)
	}
	id := int64(0)
	for i := 0; i < 2; i++ {
		for _, pt := range initial[i] {
			n := h.sides[i].list.Append(id, pt)
			h.nodes[i][n] = true
			id++
		}
	}
	h.inst = New(h.sides[0].list, h.sides[1].list, h.sides[0].probe, h.sides[1].probe)
	return h
}

func (h *harness) insert(sideIdx int, pt geom.Point, id int64) {
	n := h.sides[sideIdx].list.Append(id, pt)
	h.nodes[sideIdx][n] = true
	h.inst.NotifyInsert(sideIdx, n)
}

func (h *harness) deleteRandom(rng *rand.Rand, sideIdx int) {
	if len(h.nodes[sideIdx]) == 0 {
		return
	}
	var n *Node
	k := rng.Intn(len(h.nodes[sideIdx]))
	for cand := range h.nodes[sideIdx] {
		if k == 0 {
			n = cand
			break
		}
		k--
	}
	delete(h.nodes[sideIdx], n)
	h.inst.PreDelete(sideIdx, n)
	h.sides[sideIdx].list.Remove(n)
	h.inst.PostDelete(sideIdx, n)
}

// check asserts the two Lemma 3 guarantees.
func (h *harness) check(step string) {
	h.t.Helper()
	a, b := h.inst.Witness()
	if (a == nil) != (b == nil) {
		h.t.Fatalf("%s: half-empty witness", step)
	}
	if a != nil {
		if !h.nodes[0][a] || !h.nodes[1][b] {
			h.t.Fatalf("%s: witness references a removed node", step)
		}
		if d := geom.Dist(a.Pt, b.Pt, h.d); d > h.rHigh+1e-9 {
			h.t.Fatalf("%s: witness pair at distance %v > rHigh %v", step, d, h.rHigh)
		}
		return
	}
	// Empty pair: there must be no ε-pair.
	for n0 := range h.nodes[0] {
		for n1 := range h.nodes[1] {
			if geom.Dist(n0.Pt, n1.Pt, h.d) <= h.rLow {
				h.t.Fatalf("%s: witness empty but pair at distance %v ≤ rLow %v exists",
					step, geom.Dist(n0.Pt, n1.Pt, h.d), h.rLow)
			}
		}
	}
}

// TestEarlyTerminationSuffix is the regression test for the init subtlety:
// the initial scan stops at the first witness; points after it must still be
// reachable through the de-listing suffix when the witness dies.
func TestEarlyTerminationSuffix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Side 0: a (pairs with b), then p1 (pairs with p2, far from b).
	// Side 1: b, p2. After deleting b, the pair (p1,p2) must be found.
	initial := [2][]geom.Point{
		{{0, 0}, {100, 0}}, // a, p1
		{{1, 0}, {101, 0}}, // b, p2
	}
	h := newHarness(t, rng, 2, 0.5, initial)
	if !h.inst.HasWitness() {
		t.Fatal("initial witness expected")
	}
	h.check("init")
	// Delete b (whichever node of side 1 is at {1,0}).
	var b *Node
	for n := range h.nodes[1] {
		if n.Pt[0] == 1 {
			b = n
		}
	}
	delete(h.nodes[1], b)
	h.inst.PreDelete(1, b)
	h.sides[1].list.Remove(b)
	h.inst.PostDelete(1, b)
	if !h.inst.HasWitness() {
		t.Fatal("witness lost although (p1,p2) pair remains — init suffix not drained")
	}
	h.check("after delete")
}

// TestRandomChurn drives random insert/delete mixes against the brute-force
// invariants across dimensions and ρ values, with an adversarial probe.
func TestRandomChurn(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		for _, rho := range []float64{0, 0.001, 0.5} {
			d, rho := d, rho
			t.Run(fmt.Sprintf("d%d rho%v", d, rho), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(d)*1000 + int64(rho*100)))
				// Initial populations of various sizes, including empty.
				for _, initSizes := range [][2]int{{0, 0}, {1, 0}, {3, 5}, {8, 2}} {
					var initial [2][]geom.Point
					for s := 0; s < 2; s++ {
						for i := 0; i < initSizes[s]; i++ {
							initial[s] = append(initial[s], randSidePt(rng, d, s))
						}
					}
					h := newHarness(t, rng, d, rho, initial)
					h.check("init")
					id := int64(1000)
					for op := 0; op < 600; op++ {
						sideIdx := rng.Intn(2)
						if rng.Float64() < 0.55 {
							h.insert(sideIdx, randSidePt(rng, d, sideIdx), id)
							id++
						} else {
							h.deleteRandom(rng, sideIdx)
						}
						h.check(fmt.Sprintf("op %d", op))
					}
					// Drain everything; the witness must end up empty.
					for s := 0; s < 2; s++ {
						for len(h.nodes[s]) > 0 {
							h.deleteRandom(rng, s)
							h.check("drain")
						}
					}
					if h.inst.HasWitness() {
						t.Fatal("witness survives empty sides")
					}
				}
			})
		}
	}
}

// randSidePt places side 0 around the origin and side 1 shifted so that
// cross-side distances straddle the [rLow, rHigh] band interestingly.
func randSidePt(rng *rand.Rand, d, sideIdx int) geom.Point {
	p := make(geom.Point, d)
	for i := 0; i < d; i++ {
		p[i] = rng.Float64() * 6
	}
	if sideIdx == 1 {
		p[0] += 3 // offset creates many near-band pairs
	}
	return p
}

// TestListRemoveWrongList ensures cross-list removal is caught.
func TestListRemoveWrongList(t *testing.T) {
	a, b := NewList(), NewList()
	n := a.Append(1, geom.Point{0, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Remove(n)
}

// TestListOrder checks append order and link integrity under removals.
func TestListOrder(t *testing.T) {
	l := NewList()
	var ns []*Node
	for i := int64(0); i < 5; i++ {
		ns = append(ns, l.Append(i, geom.Point{float64(i)}))
	}
	l.Remove(ns[2])
	l.Remove(ns[0])
	l.Remove(ns[4])
	want := []int64{1, 3}
	var got []int64
	for n := l.Head(); n != nil; n = n.Next() {
		got = append(got, n.ID)
	}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("list order = %v, want %v", got, want)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}
