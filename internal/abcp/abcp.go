// Package abcp implements the approximate bichromatic close pair structure of
// Section 7.1 (Lemma 3) of the paper. An Instance watches the core-point sets
// S(c1), S(c2) of two ε-close cells and maintains a witness pair (p1*, p2*)
// such that
//
//   - if the pair is non-empty then dist(p1*, p2*) ≤ (1+ρ)ε, and
//   - the pair is non-empty whenever some pair (p1, p2) ∈ S(c1) × S(c2) has
//     dist(p1, p2) ≤ ε.
//
// The grid graph of Section 7.2 keeps an edge between two core cells exactly
// while their instance holds a witness, which is what lets the fully dynamic
// algorithm dispense with IncDBSCAN's BFS entirely.
//
// The implementation follows the paper's proof, including the O(1)-memory
// representation of the de-listing list L: each cell stores its core points
// in insertion order, and an instance keeps one cursor per side marking the
// suffix of points not yet de-listed. Every point is de-listed at most once
// per instance, giving the amortized bound of Lemma 3.
package abcp

import "dyndbscan/internal/geom"

// Node is a membership token of a point in a List. The clustering layer keeps
// one per (core point, cell) and hands it to the instances of that cell.
type Node struct {
	prev, next *Node
	ID         int64
	Pt         geom.Point
	list       *List
}

// Next returns the successor of n in insertion order.
func (n *Node) Next() *Node { return n.next }

// List is an insertion-ordered list of the core points of one cell, shared by
// all aBCP instances involving that cell.
type List struct {
	head, tail *Node
	size       int
}

// NewList returns an empty list.
func NewList() *List { return &List{} }

// Len returns the number of points in the list.
func (l *List) Len() int { return l.size }

// Head returns the first (oldest) node, or nil.
func (l *List) Head() *Node { return l.head }

// Append adds a point at the tail (points arrive in insertion order).
func (l *List) Append(id int64, pt geom.Point) *Node {
	n := &Node{ID: id, Pt: pt, list: l}
	if l.tail == nil {
		l.head, l.tail = n, n
	} else {
		n.prev = l.tail
		l.tail.next = n
		l.tail = n
	}
	l.size++
	return n
}

// Remove unlinks n. The caller must have informed every instance via
// PreDelete first, because cursor repair reads n's links.
func (l *List) Remove(n *Node) {
	if n.list != l {
		panic("abcp: removing node from wrong list")
	}
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next, n.list = nil, nil, nil
	l.size--
}

// ProbeFunc is an emptiness query against the current contents of one side:
// it returns a node of that side within (1+ρ)ε of q, and must succeed
// whenever the side holds a point within ε of q (the don't-care band in
// between may go either way). The clustering layer backs it with the per-cell
// kd-tree emptiness structure.
type ProbeFunc func(q geom.Point) (*Node, bool)

// Instance maintains the witness pair for one ε-close cell pair.
type Instance struct {
	lists   [2]*List
	probe   [2]ProbeFunc
	cursor  [2]*Node // first not-yet-de-listed node per side (the suffix L)
	witness [2]*Node // witness[i] belongs to side i; both nil ⇔ empty pair
}

// New creates an instance over the two sides and finds the initial witness by
// scanning the smaller side, as in the proof of Lemma 3.
//
// One subtlety beyond the paper's text: the initial scan terminates at the
// first witness, so the points after it on the scanned side have never been
// probed. They must seed the de-listing suffix L — otherwise a later deletion
// of the witness could drain an empty L and wrongly declare the pair empty
// while an ε-pair among the never-probed points still exists. The pair-cover
// argument then goes through: for any pair (x, y), whichever of the two was
// probed later (at init, at de-listing, or on insertion) saw the other one
// present on the opposite side.
func New(a, b *List, probeA, probeB ProbeFunc) *Instance {
	in := &Instance{lists: [2]*List{a, b}, probe: [2]ProbeFunc{probeA, probeB}}
	small := 0
	if b.Len() < a.Len() {
		small = 1
	}
	other := 1 - small
	for n := in.lists[small].head; n != nil; n = n.next {
		if m, ok := in.probe[other](n.Pt); ok {
			in.witness[small], in.witness[other] = n, m
			in.cursor[small] = n.next // never-probed suffix seeds L
			break
		}
	}
	return in
}

// HasWitness reports whether the witness pair is non-empty.
func (in *Instance) HasWitness() bool { return in.witness[0] != nil }

// SideOf returns which side (0 or 1) of the instance the given list is; it
// panics for a list the instance does not watch.
func (in *Instance) SideOf(l *List) int {
	switch l {
	case in.lists[0]:
		return 0
	case in.lists[1]:
		return 1
	}
	panic("abcp: list not a side of this instance")
}

// Witness returns the current witness nodes of side 0 and side 1 (nil, nil
// when the pair is empty).
func (in *Instance) Witness() (a, b *Node) { return in.witness[0], in.witness[1] }

// NotifyInsert must be called after a point was appended to side's list (and
// added to its emptiness structure). The new point joins the suffix L; when
// the witness is empty, de-listing resumes immediately.
func (in *Instance) NotifyInsert(side int, n *Node) {
	if in.cursor[side] == nil {
		in.cursor[side] = n
	}
	in.drain()
}

// PreDelete must be called before n is unlinked from side's list: the suffix
// cursor skips past n while its links are still intact.
func (in *Instance) PreDelete(side int, n *Node) {
	if in.cursor[side] == n {
		in.cursor[side] = n.next
	}
}

// PostDelete must be called after n was unlinked and removed from side's
// emptiness structure. If n was a witness, repair follows the proof of
// Lemma 3: first re-probe from the surviving witness into the deleted side;
// failing that, de-list from L until a witness appears or L drains.
func (in *Instance) PostDelete(side int, n *Node) {
	if in.witness[side] != n {
		return
	}
	surviving := in.witness[1-side]
	in.witness[0], in.witness[1] = nil, nil
	if m, ok := in.probe[side](surviving.Pt); ok {
		in.witness[1-side] = surviving
		in.witness[side] = m
		return
	}
	in.drain()
}

// drain de-lists points while the witness pair is empty. Each de-listed point
// issues one emptiness query against the opposite side. The invariant
// "empty witness ⇒ empty L" holds on return.
func (in *Instance) drain() {
	for in.witness[0] == nil {
		side := -1
		switch {
		case in.cursor[0] != nil:
			side = 0
		case in.cursor[1] != nil:
			side = 1
		default:
			return
		}
		n := in.cursor[side]
		in.cursor[side] = n.next
		if m, ok := in.probe[1-side](n.Pt); ok {
			in.witness[side] = n
			in.witness[1-side] = m
		}
	}
}
