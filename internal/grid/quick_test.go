package grid

import (
	"math"
	"testing"
	"testing/quick"

	"dyndbscan/internal/geom"
)

// TestQuickEpsCoverage: for arbitrary pairs of points within distance ε of
// each other, their cells must be ε-close — the coverage property every
// neighbor sweep in the clustering layer depends on. quick drives both the
// pair geometry and the grid geometry.
func TestQuickEpsCoverage(t *testing.T) {
	f := func(px, py, pz, dx, dy, dz, epsRaw float64, dims uint8) bool {
		d := 1 + int(dims%3) // 1..3
		eps := 0.5 + math.Abs(foldG(epsRaw))/100
		g := NewParams(d, eps)
		p := geom.Point{foldG(px), foldG(py), foldG(pz)}
		dir := geom.Point{foldG(dx), foldG(dy), foldG(dz)}
		norm := 0.0
		for i := 0; i < d; i++ {
			norm += dir[i] * dir[i]
		}
		if norm == 0 {
			return true
		}
		norm = math.Sqrt(norm)
		// q at a distance in (0, eps] from p along dir.
		scale := eps * 0.999 / norm
		q := make(geom.Point, 3)
		for i := 0; i < d; i++ {
			q[i] = p[i] + dir[i]*scale
		}
		if geom.Dist(p, q, d) > eps {
			return true // rounding pushed it out; not a counterexample
		}
		return g.EpsClose(g.CellOf(p), g.CellOf(q))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMinDistLowerBound: the cell-pair min distance never exceeds the
// distance between any two points drawn from the two cells.
func TestQuickMinDistLowerBound(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		g := NewParams(2, 3)
		p := geom.Point{foldG(ax), foldG(ay)}
		q := geom.Point{foldG(bx), foldG(by)}
		ca, cb := g.CellOf(p), g.CellOf(q)
		return g.MinDistSq(ca, cb) <= geom.DistSq(p, q, 2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func foldG(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 500)
}
