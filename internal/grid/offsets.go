package grid

// CloseOffsets enumerates every coordinate offset Δ such that a cell at
// c + Δ can be r-close to a cell at c (including the zero offset). The
// result depends only on the grid geometry, not on c.
//
// This is the naive neighbor-discovery strategy: probe the occupied-cell
// map at every offset. It is exact and fast in 2D–3D (a few dozen offsets)
// but the count explodes with the dimension — hundreds of thousands of
// offsets at d = 7 for r = ε — which is why the production path uses the
// kd-index over occupied cells instead (see Index.QueryClose and the
// ablation benchmark at the repository root). It is retained as a
// cross-check oracle and for the ablation.
func (g Params) CloseOffsets(r float64) []Coord {
	// Per-dimension bound: (|Δ|−1)·side ≤ r ⇒ |Δ| ≤ r/side + 1.
	maxAbs := int32(r/g.Side) + 1
	limit := r * r * (1 + closenessSlack)
	var out []Coord
	var cur Coord
	var rec func(dim int, distSq float64)
	rec = func(dim int, distSq float64) {
		if distSq > limit {
			return
		}
		if dim == g.Dims {
			out = append(out, cur)
			return
		}
		for delta := -maxAbs; delta <= maxAbs; delta++ {
			cur[dim] = delta
			add := 0.0
			if delta > 1 || delta < -1 {
				abs := delta
				if abs < 0 {
					abs = -abs
				}
				t := float64(abs-1) * g.Side
				add = t * t
			}
			rec(dim+1, distSq+add)
		}
		cur[dim] = 0
	}
	rec(0, 0)
	return out
}
