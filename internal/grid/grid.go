// Package grid implements the grid D of Section 4.1 of the paper: the data
// space R^d is partitioned into cells of side length ε/√d, which guarantees
// that any two points in the same cell are within distance ε of each other.
//
// The package provides
//
//   - cell coordinates and the point→cell mapping,
//   - the ε-closeness predicate between cells (smallest distance between the
//     two cell boxes is at most some radius r), and
//   - Index, a dynamic spatial index over the *occupied* cells.
//
// Index exists because the number of ε-close grid offsets explodes with the
// dimension (about 257,000 offsets at d = 7): a correct implementation cannot
// enumerate the whole offset ball on every cell event. Instead, occupied
// cells are kept in an integer kd-tree and the ε-close occupied cells of a
// new cell are found with one pruned range query, proportional to the number
// of occupied neighbors actually present.
package grid

import (
	"fmt"
	"math"

	"dyndbscan/internal/geom"
)

// Coord identifies a grid cell by its integer coordinates. Dimensions beyond
// the grid's dimensionality must be zero so that Coord is usable as a map key.
type Coord [geom.MaxDims]int32

// String renders the first d coordinates of c.
func (c Coord) Render(d int) string {
	return fmt.Sprintf("%v", c[:d])
}

// Params holds the geometry of a grid: the dimensionality, the radius ε the
// grid was built for, and the derived cell side length ε/√d.
type Params struct {
	Dims int
	Eps  float64
	Side float64
}

// closenessSlack is a relative tolerance applied to ε-closeness comparisons.
// Over-including a borderline cell is always safe (closeness is used only to
// restrict which cells are examined); under-including is not.
const closenessSlack = 1e-12

// NewParams returns the grid geometry for dimension d and radius eps.
// It panics if d is out of [1, geom.MaxDims] or eps is not positive, since
// both indicate a programming error rather than a runtime condition.
func NewParams(d int, eps float64) Params {
	if d < 1 || d > geom.MaxDims {
		panic(fmt.Sprintf("grid: dimension %d out of range [1,%d]", d, geom.MaxDims))
	}
	if !(eps > 0) {
		panic(fmt.Sprintf("grid: eps %v must be positive", eps))
	}
	return Params{Dims: d, Eps: eps, Side: eps / math.Sqrt(float64(d))}
}

// CellOf returns the coordinates of the cell containing pt.
func (g Params) CellOf(pt geom.Point) Coord {
	var c Coord
	for i := 0; i < g.Dims; i++ {
		c[i] = int32(math.Floor(pt[i] / g.Side))
	}
	return c
}

// CellBox returns the axis-parallel box occupied by cell c.
func (g Params) CellBox(c Coord) geom.Box {
	lo := make(geom.Point, g.Dims)
	hi := make(geom.Point, g.Dims)
	for i := 0; i < g.Dims; i++ {
		lo[i] = float64(c[i]) * g.Side
		hi[i] = float64(c[i]+1) * g.Side
	}
	return geom.Box{Lo: lo, Hi: hi}
}

// MinDistSq returns the squared smallest distance between the boxes of cells
// a and b (zero for the same or edge/corner-adjacent cells).
func (g Params) MinDistSq(a, b Coord) float64 {
	var s float64
	for i := 0; i < g.Dims; i++ {
		delta := int64(a[i]) - int64(b[i])
		if delta < 0 {
			delta = -delta
		}
		if delta > 1 {
			t := float64(delta-1) * g.Side
			s += t * t
		}
	}
	return s
}

// CloseWithin reports whether cells a and b are r-close: the smallest
// distance between their boxes is at most r (with a tiny positive slack so
// borderline cells are included rather than dropped).
func (g Params) CloseWithin(a, b Coord, r float64) bool {
	return g.MinDistSq(a, b) <= r*r*(1+closenessSlack)
}

// EpsClose reports whether cells a and b are ε-close in the paper's sense
// (r = ε).
func (g Params) EpsClose(a, b Coord) bool {
	return g.CloseWithin(a, b, g.Eps)
}

// MaxDistSqPointCell returns the squared largest distance from point q to
// the box of cell c. A cell with MaxDistSqPointCell ≤ r² lies entirely
// within B(q, r), so its whole population can be counted without per-point
// distance checks.
func (g Params) MaxDistSqPointCell(q geom.Point, c Coord) float64 {
	var s float64
	for i := 0; i < g.Dims; i++ {
		lo := float64(c[i]) * g.Side
		hi := lo + g.Side
		d := math.Max(math.Abs(q[i]-lo), math.Abs(hi-q[i]))
		s += d * d
	}
	return s
}

// MinDistSqPointCell returns the squared smallest distance from point q to
// the box of cell c. It is used to prune emptiness queries.
func (g Params) MinDistSqPointCell(q geom.Point, c Coord) float64 {
	var s float64
	for i := 0; i < g.Dims; i++ {
		lo := float64(c[i]) * g.Side
		hi := float64(c[i]+1) * g.Side
		switch {
		case q[i] < lo:
			t := lo - q[i]
			s += t * t
		case q[i] > hi:
			t := q[i] - hi
			s += t * t
		}
	}
	return s
}
