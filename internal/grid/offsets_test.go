package grid

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestCloseOffsetsMatchesPredicate: the offset list must contain exactly
// the offsets whose cells are r-close to the origin cell.
func TestCloseOffsetsMatchesPredicate(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4} {
		g := NewParams(d, 5)
		for _, r := range []float64{g.Eps, 1.5 * g.Eps} {
			offsets := make(map[Coord]bool)
			for _, off := range g.CloseOffsets(r) {
				if offsets[off] {
					t.Fatalf("d=%d: duplicate offset %v", d, off[:d])
				}
				offsets[off] = true
			}
			// Exhaustive check over a box strictly larger than the bound.
			maxAbs := int32(r/g.Side) + 2
			var origin, probe Coord
			var walk func(dim int)
			walk = func(dim int) {
				if dim == d {
					want := g.CloseWithin(origin, probe, r)
					if offsets[probe] != want {
						t.Fatalf("d=%d r=%v: offset %v in list=%v, predicate=%v",
							d, r, probe[:d], offsets[probe], want)
					}
					return
				}
				for delta := -maxAbs; delta <= maxAbs; delta++ {
					probe[dim] = delta
					walk(dim + 1)
				}
				probe[dim] = 0
			}
			walk(0)
		}
	}
}

// TestCloseOffsetsCounts pins the known neighborhood sizes: the 2D ε-ball
// of offsets has 25 cells (5×5: corner cells touch at exactly ε), and the
// count grows explosively with d — the fact that motivates the kd-index.
func TestCloseOffsetsCounts(t *testing.T) {
	want2 := 25
	g2 := NewParams(2, 7)
	if got := len(g2.CloseOffsets(g2.Eps)); got != want2 {
		t.Fatalf("2D offset count = %d, want %d", got, want2)
	}
	prev := 0
	for _, d := range []int{2, 3, 5, 7} {
		g := NewParams(d, 7)
		n := len(g.CloseOffsets(g.Eps))
		if n <= prev {
			t.Fatalf("offset count did not grow with dimension: d=%d n=%d prev=%d", d, n, prev)
		}
		prev = n
	}
	g7 := NewParams(7, 7)
	if n := len(g7.CloseOffsets(g7.Eps)); n < 100_000 {
		t.Fatalf("7D offset count = %d; expected an explosion (>100k)", n)
	}
}

// TestOffsetsAgreeWithIndex cross-checks the two neighbor-discovery
// strategies on random occupied sets: probing the offset list must return
// the same cells as the kd-index query.
func TestOffsetsAgreeWithIndex(t *testing.T) {
	for _, d := range []int{2, 3} {
		d := d
		t.Run(fmt.Sprintf("d%d", d), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(d)))
			g := NewParams(d, 4)
			ix := NewIndex[int](g)
			occupied := make(map[Coord]int)
			for i := 0; i < 500; i++ {
				var c Coord
				for j := 0; j < d; j++ {
					c[j] = int32(rng.Intn(20) - 10)
				}
				if _, ok := occupied[c]; ok {
					continue
				}
				occupied[c] = i
				ix.Insert(c, i)
			}
			offsets := g.CloseOffsets(g.Eps)
			for trial := 0; trial < 200; trial++ {
				var center Coord
				for j := 0; j < d; j++ {
					center[j] = int32(rng.Intn(24) - 12)
				}
				viaOffsets := make(map[Coord]bool)
				for _, off := range offsets {
					var c Coord
					for j := 0; j < d; j++ {
						c[j] = center[j] + off[j]
					}
					if _, ok := occupied[c]; ok {
						viaOffsets[c] = true
					}
				}
				viaIndex := make(map[Coord]bool)
				ix.QueryClose(center, g.Eps, func(c Coord, _ int) bool {
					viaIndex[c] = true
					return true
				})
				if len(viaOffsets) != len(viaIndex) {
					t.Fatalf("trial %d: offsets found %d, index found %d", trial, len(viaOffsets), len(viaIndex))
				}
				for c := range viaOffsets {
					if !viaIndex[c] {
						t.Fatalf("trial %d: cell %v missed by index", trial, c[:d])
					}
				}
			}
		})
	}
}
