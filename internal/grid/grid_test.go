package grid

import (
	"math"
	"math/rand"
	"testing"

	"dyndbscan/internal/geom"
)

func TestCellOf(t *testing.T) {
	g := NewParams(2, math.Sqrt2) // side = 1
	tests := []struct {
		pt   geom.Point
		want Coord
	}{
		{geom.Point{0.5, 0.5}, Coord{0, 0}},
		{geom.Point{1.0, 0.0}, Coord{1, 0}},
		{geom.Point{-0.5, 2.3}, Coord{-1, 2}},
		{geom.Point{-3.0, -3.0}, Coord{-3, -3}},
	}
	for _, tc := range tests {
		if got := g.CellOf(tc.pt); got != tc.want {
			t.Errorf("CellOf(%v) = %v, want %v", tc.pt, got, tc.want)
		}
	}
}

// Any two points in the same cell must be within ε of each other — the
// defining property of the ε/√d side length (Section 4.1).
func TestSameCellWithinEps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{1, 2, 3, 5, 7} {
		g := NewParams(d, 10)
		for i := 0; i < 2000; i++ {
			p := randPt(rng, d, 100)
			q := make(geom.Point, d)
			cell := g.CellOf(p)
			box := g.CellBox(cell)
			for j := 0; j < d; j++ {
				q[j] = box.Lo[j] + rng.Float64()*(box.Hi[j]-box.Lo[j])
			}
			if g.CellOf(q) != cell {
				continue // boundary rounding; irrelevant to the property
			}
			if geom.Dist(p, q, d) > g.Eps+1e-9 {
				t.Fatalf("d=%d: same-cell points at distance %v > eps %v", d, geom.Dist(p, q, d), g.Eps)
			}
		}
	}
}

// ε-closeness must match the geometric definition: the smallest distance
// between the two cell boxes is ≤ r. Verified against brute-force box
// distance for random cell pairs in all dimensions.
func TestCloseWithinMatchesBoxDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []int{1, 2, 3, 5, 7} {
		g := NewParams(d, 7.5)
		for i := 0; i < 5000; i++ {
			var a, b Coord
			for j := 0; j < d; j++ {
				a[j] = int32(rng.Intn(9) - 4)
				b[j] = int32(rng.Intn(9) - 4)
			}
			boxA, boxB := g.CellBox(a), g.CellBox(b)
			want := boxMinDist(boxA, boxB, d)
			got := math.Sqrt(g.MinDistSq(a, b))
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("d=%d MinDist(%v,%v) = %v, want %v", d, a[:d], b[:d], got, want)
			}
			r := rng.Float64() * 3 * g.Eps
			if g.CloseWithin(a, b, r) != (want <= r*(1+1e-6)) && math.Abs(want-r) > 1e-6*r {
				t.Fatalf("d=%d CloseWithin(%v,%v,%v) inconsistent with dist %v", d, a[:d], b[:d], r, want)
			}
		}
	}
}

func boxMinDist(a, b geom.Box, d int) float64 {
	var s float64
	for i := 0; i < d; i++ {
		var gap float64
		if a.Hi[i] < b.Lo[i] {
			gap = b.Lo[i] - a.Hi[i]
		} else if b.Hi[i] < a.Lo[i] {
			gap = a.Lo[i] - b.Hi[i]
		}
		s += gap * gap
	}
	return math.Sqrt(s)
}

// Two points within ε of each other must lie in ε-close cells — the coverage
// property every neighbor sweep depends on.
func TestEpsCloseCoversEpsPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []int{2, 3, 5, 7} {
		g := NewParams(d, 5)
		for i := 0; i < 5000; i++ {
			p := randPt(rng, d, 20)
			q := geom.RandInBall(rng, p, g.Eps, d)
			if !g.EpsClose(g.CellOf(p), g.CellOf(q)) {
				t.Fatalf("d=%d: points at distance %v in non-ε-close cells", d, geom.Dist(p, q, d))
			}
		}
	}
}

func TestMinDistSqPointCell(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := NewParams(3, 6)
	for i := 0; i < 3000; i++ {
		q := randPt(rng, 3, 30)
		var c Coord
		for j := 0; j < 3; j++ {
			c[j] = int32(rng.Intn(11) - 5)
		}
		box := g.CellBox(c)
		want := box.MinDistSq(q, 3)
		if got := g.MinDistSqPointCell(q, c); math.Abs(got-want) > 1e-9 {
			t.Fatalf("MinDistSqPointCell = %v, want %v", got, want)
		}
	}
}

func TestMaxDistSqPointCell(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := NewParams(3, 6)
	for i := 0; i < 3000; i++ {
		q := randPt(rng, 3, 30)
		var c Coord
		for j := 0; j < 3; j++ {
			c[j] = int32(rng.Intn(11) - 5)
		}
		box := g.CellBox(c)
		want := box.MaxDistSq(q, 3)
		if got := g.MaxDistSqPointCell(q, c); math.Abs(got-want) > 1e-9 {
			t.Fatalf("MaxDistSqPointCell = %v, want %v", got, want)
		}
		// Every point sampled inside the cell must be within the bound.
		p := make(geom.Point, 3)
		for j := 0; j < 3; j++ {
			p[j] = box.Lo[j] + rng.Float64()*(box.Hi[j]-box.Lo[j])
		}
		if geom.DistSq(q, p, 3) > g.MaxDistSqPointCell(q, c)+1e-9 {
			t.Fatal("cell point beyond MaxDistSqPointCell bound")
		}
	}
}

func TestParamsPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewParams(0, 1) },
		func() { NewParams(geom.MaxDims+1, 1) },
		func() { NewParams(2, 0) },
		func() { NewParams(2, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func randPt(rng *rand.Rand, d int, scale float64) geom.Point {
	p := make(geom.Point, d)
	for i := 0; i < d; i++ {
		p[i] = (rng.Float64()*2 - 1) * scale
	}
	return p
}
