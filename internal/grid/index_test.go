package grid

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// queryNaive returns the live cells r-close to center by linear scan.
func queryNaive(g Params, cells map[Coord]int, center Coord, r float64) []Coord {
	var out []Coord
	for c := range cells {
		if g.CloseWithin(center, c, r) {
			out = append(out, c)
		}
	}
	sortCoords(out)
	return out
}

func sortCoords(cs []Coord) {
	sort.Slice(cs, func(i, j int) bool {
		for k := 0; k < len(cs[i]); k++ {
			if cs[i][k] != cs[j][k] {
				return cs[i][k] < cs[j][k]
			}
		}
		return false
	})
}

func collect(ix *Index[int], center Coord, r float64) []Coord {
	var out []Coord
	ix.QueryClose(center, r, func(c Coord, _ int) bool {
		out = append(out, c)
		return true
	})
	sortCoords(out)
	return out
}

// TestIndexAgainstNaive performs random insert/delete/query sequences in all
// evaluated dimensions, comparing every query against a linear scan.
func TestIndexAgainstNaive(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5, 7} {
		d := d
		t.Run(fmt.Sprintf("d%d", d), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(d)))
			g := NewParams(d, 4)
			ix := NewIndex[int](g)
			model := make(map[Coord]int)
			randCoord := func() Coord {
				var c Coord
				for j := 0; j < d; j++ {
					c[j] = int32(rng.Intn(13) - 6)
				}
				return c
			}
			for op := 0; op < 3000; op++ {
				switch r := rng.Float64(); {
				case r < 0.5:
					c := randCoord()
					ix.Insert(c, op)
					model[c] = op
				case r < 0.8 && len(model) > 0:
					// Delete a random existing cell.
					for c := range model {
						ix.Delete(c)
						delete(model, c)
						break
					}
				default:
					center := randCoord()
					radius := rng.Float64() * 2.5 * g.Eps
					got := collect(ix, center, radius)
					want := queryNaive(g, model, center, radius)
					if len(got) != len(want) {
						t.Fatalf("op %d: query got %d cells, want %d", op, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("op %d: result %d differs: %v vs %v", op, i, got[i], want[i])
						}
					}
				}
				if ix.Len() != len(model) {
					t.Fatalf("op %d: Len=%d want %d", op, ix.Len(), len(model))
				}
			}
		})
	}
}

func TestIndexGetAndReplace(t *testing.T) {
	g := NewParams(2, 3)
	ix := NewIndex[int](g)
	c := Coord{1, 2}
	if _, ok := ix.Get(c); ok {
		t.Fatal("Get on empty index")
	}
	ix.Insert(c, 7)
	if v, ok := ix.Get(c); !ok || v != 7 {
		t.Fatalf("Get = %v,%v want 7,true", v, ok)
	}
	ix.Insert(c, 9) // replace
	if v, _ := ix.Get(c); v != 9 {
		t.Fatalf("replace failed, got %v", v)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len=%d want 1", ix.Len())
	}
	ix.Delete(c)
	ix.Delete(c) // second delete is a no-op
	if ix.Len() != 0 {
		t.Fatal("delete failed")
	}
}

// TestIndexEarlyStop verifies that returning false stops iteration.
func TestIndexEarlyStop(t *testing.T) {
	g := NewParams(2, 10)
	ix := NewIndex[int](g)
	for i := int32(0); i < 5; i++ {
		ix.Insert(Coord{i, 0}, int(i))
	}
	calls := 0
	ix.QueryClose(Coord{0, 0}, 1000, func(Coord, int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop visited %d cells, want 1", calls)
	}
}

// TestIndexRebuildStress drives enough churn to trigger many rebuilds and
// verifies queries stay correct throughout.
func TestIndexRebuildStress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := NewParams(3, 5)
	ix := NewIndex[int](g)
	model := make(map[Coord]int)
	var order []Coord
	for round := 0; round < 30; round++ {
		for i := 0; i < 100; i++ {
			var c Coord
			for j := 0; j < 3; j++ {
				c[j] = int32(rng.Intn(40) - 20)
			}
			if _, dup := model[c]; dup {
				continue
			}
			ix.Insert(c, i)
			model[c] = i
			order = append(order, c)
		}
		for i := 0; i < 80 && len(order) > 0; i++ {
			k := rng.Intn(len(order))
			c := order[k]
			order[k] = order[len(order)-1]
			order = order[:len(order)-1]
			if _, ok := model[c]; !ok {
				continue
			}
			ix.Delete(c)
			delete(model, c)
		}
		center := Coord{0, 0, 0}
		got := collect(ix, center, 2*g.Eps)
		want := queryNaive(g, model, center, 2*g.Eps)
		if len(got) != len(want) {
			t.Fatalf("round %d: got %d want %d", round, len(got), len(want))
		}
	}
}
