package grid

// Index is a dynamic kd-tree over occupied cell coordinates with values of
// type T attached. It supports insertion, deletion and pruned "r-close"
// range queries, and keeps itself balanced by full rebuilds once enough
// updates have accumulated (a scapegoat-style policy that amortizes to
// O(log n) per operation for the update mix seen here, where cell events are
// far rarer than point events).
//
// Deletions are lazy: nodes are tombstoned and physically removed at the next
// rebuild. Subtree coordinate bounds are maintained conservatively (they may
// over-cover after deletions), which can only make queries visit more nodes,
// never miss one.
type Index[T any] struct {
	geo   Params
	root  *inode[T]
	nodes map[Coord]*inode[T]

	dead       int // tombstoned nodes still in the tree
	sinceBuild int // insertions since the last rebuild
}

type inode[T any] struct {
	coord       Coord
	value       T
	dead        bool
	axis        int8
	left, right *inode[T]
	lo, hi      Coord // coordinate bounds of the whole subtree
}

// NewIndex returns an empty index over cells of the given grid geometry.
func NewIndex[T any](geo Params) *Index[T] {
	return &Index[T]{geo: geo, nodes: make(map[Coord]*inode[T])}
}

// Len returns the number of live cells in the index.
func (ix *Index[T]) Len() int { return len(ix.nodes) }

// ForEach invokes fn on every live cell in no particular order; iteration
// stops early if fn returns false.
func (ix *Index[T]) ForEach(fn func(Coord, T) bool) {
	for c, n := range ix.nodes {
		if !fn(c, n.value) {
			return
		}
	}
}

// Get returns the value stored for cell c, if present.
func (ix *Index[T]) Get(c Coord) (T, bool) {
	n, ok := ix.nodes[c]
	if !ok {
		var zero T
		return zero, false
	}
	return n.value, true
}

// Insert adds cell c with value v. Inserting a coordinate that is already
// present replaces its value.
func (ix *Index[T]) Insert(c Coord, v T) {
	if n, ok := ix.nodes[c]; ok {
		n.value = v
		return
	}
	n := &inode[T]{coord: c, value: v, lo: c, hi: c}
	ix.nodes[c] = n
	ix.insertNode(n)
	ix.sinceBuild++
	ix.maybeRebuild()
}

// Delete removes cell c. Deleting an absent coordinate is a no-op.
func (ix *Index[T]) Delete(c Coord) {
	n, ok := ix.nodes[c]
	if !ok {
		return
	}
	delete(ix.nodes, c)
	n.dead = true
	var zero T
	n.value = zero
	ix.dead++
	ix.maybeRebuild()
}

// QueryClose invokes fn for every live cell whose box is within distance r of
// the box of cell center (center itself included when present). Iteration
// stops early if fn returns false.
func (ix *Index[T]) QueryClose(center Coord, r float64, fn func(Coord, T) bool) {
	rsq := r * r * (1 + closenessSlack)
	ix.queryNode(ix.root, center, rsq, fn)
}

func (ix *Index[T]) queryNode(n *inode[T], center Coord, rsq float64, fn func(Coord, T) bool) bool {
	if n == nil || ix.minDistSqToRange(center, n.lo, n.hi) > rsq {
		return true
	}
	if !n.dead && ix.geo.MinDistSq(center, n.coord) <= rsq {
		if !fn(n.coord, n.value) {
			return false
		}
	}
	if !ix.queryNode(n.left, center, rsq, fn) {
		return false
	}
	return ix.queryNode(n.right, center, rsq, fn)
}

// minDistSqToRange lower-bounds the box distance between cell center and any
// cell with coordinates in [lo, hi].
func (ix *Index[T]) minDistSqToRange(center Coord, lo, hi Coord) float64 {
	var s float64
	for i := 0; i < ix.geo.Dims; i++ {
		var delta int64
		switch {
		case int64(center[i]) < int64(lo[i]):
			delta = int64(lo[i]) - int64(center[i])
		case int64(center[i]) > int64(hi[i]):
			delta = int64(center[i]) - int64(hi[i])
		}
		if delta > 1 {
			t := float64(delta-1) * ix.geo.Side
			s += t * t
		}
	}
	return s
}

func (ix *Index[T]) insertNode(n *inode[T]) {
	if ix.root == nil {
		n.axis = 0
		ix.root = n
		return
	}
	cur := ix.root
	for {
		expandBounds(&cur.lo, &cur.hi, n.coord, ix.geo.Dims)
		axis := cur.axis
		next := &cur.left
		if n.coord[axis] >= cur.coord[axis] {
			next = &cur.right
		}
		if *next == nil {
			n.axis = int8((int(axis) + 1) % ix.geo.Dims)
			*next = n
			return
		}
		cur = *next
	}
}

func expandBounds(lo, hi *Coord, c Coord, d int) {
	for i := 0; i < d; i++ {
		if c[i] < lo[i] {
			lo[i] = c[i]
		}
		if c[i] > hi[i] {
			hi[i] = c[i]
		}
	}
}

// maybeRebuild rebuilds the tree into perfectly balanced form once the sum of
// tombstones and fresh insertions exceeds the live population. This keeps the
// expected depth logarithmic without per-operation rebalancing.
func (ix *Index[T]) maybeRebuild() {
	live := len(ix.nodes)
	if ix.dead+ix.sinceBuild <= live/2+8 {
		return
	}
	nodes := make([]*inode[T], 0, live)
	for _, n := range ix.nodes {
		n.left, n.right = nil, nil
		n.lo, n.hi = n.coord, n.coord
		nodes = append(nodes, n)
	}
	ix.root = ix.build(nodes, 0)
	ix.dead = 0
	ix.sinceBuild = 0
}

func (ix *Index[T]) build(nodes []*inode[T], axis int) *inode[T] {
	if len(nodes) == 0 {
		return nil
	}
	mid := len(nodes) / 2
	quickSelect(nodes, mid, axis)
	n := nodes[mid]
	n.axis = int8(axis)
	next := (axis + 1) % ix.geo.Dims
	n.left = ix.build(nodes[:mid], next)
	n.right = ix.build(nodes[mid+1:], next)
	n.lo, n.hi = n.coord, n.coord
	for _, ch := range []*inode[T]{n.left, n.right} {
		if ch != nil {
			expandBounds(&n.lo, &n.hi, ch.lo, ix.geo.Dims)
			expandBounds(&n.lo, &n.hi, ch.hi, ix.geo.Dims)
		}
	}
	return n
}

// quickSelect partially sorts nodes so that nodes[k] holds the k-th smallest
// coordinate on the given axis, with smaller elements before it.
func quickSelect[T any](nodes []*inode[T], k, axis int) {
	lo, hi := 0, len(nodes)-1
	for lo < hi {
		// Median-of-three pivot to avoid quadratic behavior on the
		// mostly-sorted slices produced by repeated rebuilds.
		mid := (lo + hi) / 2
		if nodes[mid].coord[axis] < nodes[lo].coord[axis] {
			nodes[mid], nodes[lo] = nodes[lo], nodes[mid]
		}
		if nodes[hi].coord[axis] < nodes[lo].coord[axis] {
			nodes[hi], nodes[lo] = nodes[lo], nodes[hi]
		}
		if nodes[hi].coord[axis] < nodes[mid].coord[axis] {
			nodes[hi], nodes[mid] = nodes[mid], nodes[hi]
		}
		pivot := nodes[mid].coord[axis]
		i, j := lo, hi
		for i <= j {
			for nodes[i].coord[axis] < pivot {
				i++
			}
			for nodes[j].coord[axis] > pivot {
				j--
			}
			if i <= j {
				nodes[i], nodes[j] = nodes[j], nodes[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}
