package pipeline

import (
	"runtime"
)

// GoroutineID returns the runtime id of the calling goroutine, parsed from
// the first line of its stack trace ("goroutine N [...]"). It exists for one
// purpose: detecting, at the moment a lossless event enqueue is about to
// block, that the would-be waiter is the queue's own consumer — a guaranteed
// deadlock that should fail fast instead of hanging. It is only called on
// that already-stalled slow path, where the ~1µs stack capture is free.
func GoroutineID() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine " (10 bytes), then read digits.
	var id uint64
	for _, c := range buf[10:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
