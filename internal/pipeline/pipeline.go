// Package pipeline provides the concurrency primitives behind the Engine's
// phase-split serving layer: a parallel pre-commit stage runner (Map) used to
// pipeline batch ingestion, and bounded single-consumer queues (Queue) used
// for asynchronous event dispatch.
//
// The structure mirrors staged-execution designs such as Doppel's phased
// workers: work that does not need the shared structure (validation, geometry
// conversion, grid coordinate assignment) fans out across workers, and only
// the commit phase — which mutates the clustering — serializes.
package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: n itself when positive, else
// GOMAXPROCS. The result is always ≥ 1.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		return p
	}
	return 1
}

// serialThreshold is the batch size under which Map runs inline: below it the
// goroutine handoff costs more than the staging work it parallelizes.
const serialThreshold = 128

// Map runs fn(i, items[i]) for every item, on up to workers goroutines, and
// returns the results in item order. When any call fails, Map returns the
// error of the lowest failing index (so batch error reporting is
// deterministic regardless of scheduling) and the results are discarded;
// workers stop claiming new items once a failure is recorded.
//
// fn must be safe for concurrent invocation on distinct items. Small batches
// (or workers == 1) run inline on the caller's goroutine.
func Map[T, R any](workers int, items []T, fn func(int, T) (R, error)) ([]R, error) {
	if len(items) == 0 {
		return nil, nil
	}
	out := make([]R, len(items))
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 || len(items) < serialThreshold {
		for i, it := range items {
			r, err := fn(i, it)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	var (
		next   atomic.Int64 // next unclaimed item index
		errIdx atomic.Int64 // lowest failing index seen so far
		//dynlint:lock-level 120
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	errIdx.Store(int64(len(items)))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				// Items above the lowest known failure cannot change the
				// reported error and their results will be discarded; skip
				// them. (A stale — higher — errIdx read only skips less.)
				if int64(i) > errIdx.Load() {
					continue
				}
				r, err := fn(i, items[i])
				if err != nil {
					errMu.Lock()
					if int64(i) < errIdx.Load() {
						errIdx.Store(int64(i))
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
