package pipeline

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	auto := Workers(0)
	if auto < 1 || auto != Workers(-5) {
		t.Fatalf("auto workers = %d / %d", auto, Workers(-5))
	}
	if auto > runtime.GOMAXPROCS(0) {
		t.Fatalf("auto workers %d exceeds GOMAXPROCS", auto)
	}
}

func TestMapOrder(t *testing.T) {
	for _, n := range []int{0, 1, 50, serialThreshold, 10_000} {
		items := make([]int, n)
		for i := range items {
			items[i] = i
		}
		out, err := Map(8, items, func(i, v int) (int, error) { return v * 2, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != n {
			t.Fatalf("n=%d: got %d results", n, len(out))
		}
		for i, v := range out {
			if v != 2*i {
				t.Fatalf("n=%d: out[%d] = %d", n, i, v)
			}
		}
	}
}

// TestMapLowestError checks the deterministic error contract: whatever the
// scheduling, the reported error is the one of the smallest failing index.
func TestMapLowestError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 500 + rng.Intn(2000)
		bad := map[int]bool{}
		for k := 0; k < 1+rng.Intn(5); k++ {
			bad[rng.Intn(n)] = true
		}
		lowest := n
		for i := range bad {
			if i < lowest {
				lowest = i
			}
		}
		items := make([]int, n)
		_, err := Map(4, items, func(i, _ int) (int, error) {
			if bad[i] {
				return 0, fmt.Errorf("bad %d", i)
			}
			return 0, nil
		})
		if err == nil || err.Error() != fmt.Sprintf("bad %d", lowest) {
			t.Fatalf("trial %d: err = %v, want bad %d", trial, err, lowest)
		}
	}
}

func TestMapSerialError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	_, err := Map(1, []int{0, 1, 2, 3}, func(i, _ int) (int, error) {
		calls.Add(1)
		if i == 1 {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("serial Map did not stop at first error: %d calls", calls.Load())
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int](4)
	var got []int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			v, ok := q.Get()
			if !ok {
				return
			}
			got = append(got, v)
			q.Done()
		}
	}()
	for i := 0; i < 100; i++ {
		if !q.Put(i, false) {
			t.Error("Put rejected before close")
		}
	}
	q.WaitIdle()
	q.Close()
	wg.Wait()
	if len(got) != 100 {
		t.Fatalf("delivered %d items", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	if q.Put(7, false) {
		t.Fatal("Put accepted after close")
	}
}

// TestQueueDropOldest checks the lossy overflow policy: with no consumer
// running, a full queue evicts its oldest items, keeping the newest.
func TestQueueDropOldest(t *testing.T) {
	q := NewQueue[int](3)
	for i := 0; i < 10; i++ {
		q.Put(i, true)
	}
	if d := q.Dropped(); d != 7 {
		t.Fatalf("Dropped = %d, want 7", d)
	}
	var got []int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			v, ok := q.Get()
			if !ok {
				return
			}
			got = append(got, v)
			q.Done()
		}
	}()
	q.WaitIdle()
	q.Close()
	<-done
	want := []int{7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestQueueBarrier checks the drain-point primitive: WaitHandled(Barrier())
// returns once everything enqueued before the barrier was delivered or
// evicted, even while the producer keeps putting.
func TestQueueBarrier(t *testing.T) {
	q := NewQueue[int](2)
	for i := 0; i < 10; i++ {
		q.Put(i, true) // 8 evictions: handled already counts them
	}
	target := q.Barrier()
	if target != 10 {
		t.Fatalf("Barrier = %d, want 10", target)
	}
	done := make(chan struct{})
	go func() {
		q.WaitHandled(target)
		close(done)
	}()
	// Drain the two survivors; the producer keeps adding afterwards, which
	// must not keep WaitHandled blocked.
	for i := 0; i < 2; i++ {
		if _, ok := q.Get(); !ok {
			t.Error("queue closed early")
			return
		}
		q.Done()
	}
	q.Put(99, true)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitHandled did not return after its barrier was settled")
	}
	q.Close()
}

// TestQueueBlockingPut checks the lossless policy: a Put into a full queue
// waits for the consumer instead of dropping.
func TestQueueBlockingPut(t *testing.T) {
	q := NewQueue[int](1)
	q.Put(0, false)
	unblocked := make(chan struct{})
	go func() {
		q.Put(1, false) // must block until the consumer drains item 0
		close(unblocked)
	}()
	select {
	case <-unblocked:
		t.Fatal("Put into a full queue did not block")
	case <-time.After(20 * time.Millisecond):
	}
	if v, ok := q.Get(); !ok || v != 0 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	q.Done()
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("Put still blocked after consumer made room")
	}
	q.Close()
}

// TestQueueCloseReleasesBlockedPut checks that Close unblocks a waiting
// producer with ok=false.
func TestQueueCloseReleasesBlockedPut(t *testing.T) {
	q := NewQueue[int](1)
	q.Put(0, false)
	res := make(chan bool)
	go func() { res <- q.Put(1, false) }()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case ok := <-res:
		if ok {
			t.Fatal("Put reported accepted after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Put not released by Close")
	}
}
