package pipeline

import "sync"

// Queue is a bounded FIFO connecting producers to one consumer goroutine —
// the per-subscriber event queue of the Engine's async dispatch. Producers
// choose the overflow behavior per Put: block until the consumer makes room
// (lossless backpressure) or drop the oldest queued item (lossy, bounded
// staleness). The consumer drains with Get and acknowledges each item with
// Done, which lets WaitIdle observe full delivery, not just dequeueing.
type Queue[T any] struct {
	//dynlint:lock-level 100
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	idle     sync.Cond
	buf      []T // ring buffer
	head, n  int
	inFlight bool   // consumer is between Get and Done
	accepted uint64 // total items ever accepted by Put
	handled  uint64 // total items delivered (Done) or evicted (DropOldest)
	dropped  uint64
	closed   bool
}

// NewQueue returns a queue holding at most capacity items (minimum 1).
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue[T]{buf: make([]T, capacity)}
	q.notEmpty.L = &q.mu
	q.notFull.L = &q.mu
	q.idle.L = &q.mu
	return q
}

// Put enqueues v and reports whether the queue accepted it (false once
// closed). With dropOldest, a full queue evicts its oldest item instead of
// blocking, so Put never waits.
//
//dynlint:blocks
func (q *Queue[T]) Put(v T, dropOldest bool) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == len(q.buf) && !q.closed && !dropOldest {
		q.notFull.Wait()
	}
	if q.closed {
		return false
	}
	if q.n == len(q.buf) { // dropOldest on a full queue
		var zero T
		q.buf[q.head] = zero
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		q.dropped++
		q.handled++ // an eviction settles that item for barrier purposes
		q.idle.Broadcast()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
	q.accepted++
	q.notEmpty.Signal()
	return true
}

// TryPut attempts a non-blocking lossless enqueue. accepted reports whether
// v was enqueued; wouldBlock reports that the queue was full (and open), so
// a blocking Put is the caller's next move — after checking that it is not
// the queue's own consumer.
func (q *Queue[T]) TryPut(v T) (accepted, wouldBlock bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, false
	}
	if q.n == len(q.buf) {
		return false, true
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
	q.accepted++
	q.notEmpty.Signal()
	return true, false
}

// Get blocks until an item is available and dequeues it, marking it in
// flight until the consumer calls Done. It returns ok=false once the queue
// is closed; items still queued at close time are discarded.
//
//dynlint:blocks
func (q *Queue[T]) Get() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	var zero T
	if q.closed {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.inFlight = true
	q.notFull.Signal()
	return v, true
}

// Done acknowledges the item returned by the last Get as fully processed.
func (q *Queue[T]) Done() {
	q.mu.Lock()
	q.inFlight = false
	q.handled++
	q.idle.Broadcast()
	q.mu.Unlock()
}

// WaitIdle blocks until the queue is empty with no item in flight (every
// accepted item was delivered or dropped), or until the queue is closed.
// Under a sustained producer stream it may never return; use Barrier /
// WaitHandled for a bounded drain point.
func (q *Queue[T]) WaitIdle() {
	q.mu.Lock()
	for (q.n > 0 || q.inFlight) && !q.closed {
		q.idle.Wait()
	}
	q.mu.Unlock()
}

// Barrier returns the running count of items accepted so far — a drain
// target for WaitHandled covering everything already enqueued.
func (q *Queue[T]) Barrier() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.accepted
}

// WaitHandled blocks until `target` items have been settled — delivered
// through Get/Done or evicted by DropOldest overflow — or the queue is
// closed. Unlike WaitIdle it terminates even while producers keep adding.
//
//dynlint:blocks
func (q *Queue[T]) WaitHandled(target uint64) {
	q.mu.Lock()
	for q.handled < target && !q.closed {
		q.idle.Wait()
	}
	q.mu.Unlock()
}

// Full reports whether the queue is at capacity right now.
func (q *Queue[T]) Full() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n == len(q.buf)
}

// Dropped returns how many items DropOldest overflow has evicted.
func (q *Queue[T]) Dropped() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

// Close releases all waiters: pending and future Puts return false, the
// consumer's Get returns ok=false, and WaitIdle returns. Close is idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
	q.idle.Broadcast()
	q.mu.Unlock()
}
