package dyndbscan_test

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"dyndbscan"
	"dyndbscan/internal/evcheck"
	"dyndbscan/internal/wal"
)

// newShardTestEngine builds one engine of the equivalence pair. Rho = 0:
// with exact semantics every clustering decision is a pure function of the
// visible point set, so the sharded engine must reproduce the single-shard
// clustering exactly (the documented equivalence guarantee).
func newShardTestEngine(t *testing.T, algo dyndbscan.Algorithm, dims, shards int) *dyndbscan.Engine {
	t.Helper()
	opts := []dyndbscan.Option{
		dyndbscan.WithAlgorithm(algo),
		dyndbscan.WithDims(dims),
		dyndbscan.WithEps(30),
		dyndbscan.WithMinPts(4),
		dyndbscan.WithRho(0),
		dyndbscan.WithShards(shards),
	}
	if shards > 1 {
		// Narrow stripes (clamped to just past the ghost band) force the
		// test blobs to straddle many seams, stressing the stitching pass.
		opts = append(opts, dyndbscan.WithShardStripe(4))
	}
	e, err := dyndbscan.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// clusteredPoints emits blobs spread along dimension 0 — including negative
// coordinates, exercising the stripe arithmetic below zero — plus uniform
// noise.
func clusteredPoints(rng *rand.Rand, dims, blobs, perBlob, noise int) []dyndbscan.Point {
	var pts []dyndbscan.Point
	for b := 0; b < blobs; b++ {
		center := make(dyndbscan.Point, dims)
		center[0] = -600 + rng.Float64()*1200
		for d := 1; d < dims; d++ {
			center[d] = rng.Float64() * 400
		}
		for i := 0; i < perBlob; i++ {
			pt := make(dyndbscan.Point, dims)
			for d := 0; d < dims; d++ {
				pt[d] = center[d] + (rng.Float64()-0.5)*120
			}
			pts = append(pts, pt)
		}
	}
	for i := 0; i < noise; i++ {
		pt := make(dyndbscan.Point, dims)
		pt[0] = -800 + rng.Float64()*1600
		for d := 1; d < dims; d++ {
			pt[d] = rng.Float64() * 600
		}
		pts = append(pts, pt)
	}
	return pts
}

// checkIsomorphic asserts the two engines hold the same clustering as a
// partition (groups, border multi-membership, noise) — cluster ids may
// differ, which is exactly what GroupAll's canonical Result abstracts away.
func checkIsomorphic(t *testing.T, single, sharded *dyndbscan.Engine, stage string) {
	t.Helper()
	if gl, gs := single.Len(), sharded.Len(); gl != gs {
		t.Fatalf("%s: Len mismatch: single %d, sharded %d", stage, gl, gs)
	}
	r1, err := single.GroupAll()
	if err != nil {
		t.Fatalf("%s: single GroupAll: %v", stage, err)
	}
	r2, err := sharded.GroupAll()
	if err != nil {
		t.Fatalf("%s: sharded GroupAll: %v", stage, err)
	}
	if len(r1.Groups) != len(r2.Groups) {
		t.Fatalf("%s: group count mismatch: single %d, sharded %d", stage, len(r1.Groups), len(r2.Groups))
	}
	for i := range r1.Groups {
		if !reflect.DeepEqual(r1.Groups[i], r2.Groups[i]) {
			t.Fatalf("%s: group %d mismatch:\nsingle:  %v\nsharded: %v", stage, i, r1.Groups[i], r2.Groups[i])
		}
	}
	if !(len(r1.Noise) == 0 && len(r2.Noise) == 0) && !reflect.DeepEqual(r1.Noise, r2.Noise) {
		t.Fatalf("%s: noise mismatch:\nsingle:  %v\nsharded: %v", stage, r1.Noise, r2.Noise)
	}
}

// TestShardedEquivalence drives an identical mixed workload through a
// single-shard and a sharded engine and requires isomorphic snapshots after
// every phase — the acceptance criterion of the sharded mode.
func TestShardedEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		algo    dyndbscan.Algorithm
		dims    int
		shards  int
		deletes bool
	}{
		{"FullyDynamic/2D/3shards", dyndbscan.AlgoFullyDynamic, 2, 3, true},
		{"FullyDynamic/2D/8shards", dyndbscan.AlgoFullyDynamic, 2, 8, true},
		{"FullyDynamic/3D/4shards", dyndbscan.AlgoFullyDynamic, 3, 4, true},
		{"SemiDynamic/2D/4shards", dyndbscan.AlgoSemiDynamic, 2, 4, false},
		{"IncDBSCAN/2D/4shards", dyndbscan.AlgoIncDBSCAN, 2, 4, true},
		{"IncDBSCANRTree/2D/3shards", dyndbscan.AlgoIncDBSCANRTree, 2, 3, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			single := newShardTestEngine(t, tc.algo, tc.dims, 1)
			sharded := newShardTestEngine(t, tc.algo, tc.dims, tc.shards)
			if got := sharded.Shards(); got != tc.shards {
				t.Fatalf("Shards() = %d, want %d", got, tc.shards)
			}

			// Phase 1: batch ingestion. Both engines mint the same handles
			// for the same sequence, so ids can be shared below.
			pts := clusteredPoints(rng, tc.dims, 6, 60, 30)
			ids1, err := single.InsertBatch(pts)
			if err != nil {
				t.Fatal(err)
			}
			ids2, err := sharded.InsertBatch(pts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ids1, ids2) {
				t.Fatalf("InsertBatch ids diverge: %v vs %v", ids1[:5], ids2[:5])
			}
			checkIsomorphic(t, single, sharded, "after batch insert")

			live := append([]dyndbscan.PointID(nil), ids1...)

			// Phase 2: mixed Apply batches (fresh points in, random points
			// out) — the pipelined path the sharded mode parallelizes.
			for round := 0; round < 4; round++ {
				fresh := clusteredPoints(rng, tc.dims, 2, 25, 5)
				ops := make([]dyndbscan.Op, 0, len(fresh)+20)
				for _, pt := range fresh {
					ops = append(ops, dyndbscan.InsertOp(pt))
				}
				if tc.deletes {
					for i := 0; i < 20 && len(live) > 0; i++ {
						k := rng.Intn(len(live))
						ops = append(ops, dyndbscan.DeleteOp(live[k]))
						live[k] = live[len(live)-1]
						live = live[:len(live)-1]
					}
				}
				out1, err := single.Apply(ops)
				if err != nil {
					t.Fatal(err)
				}
				out2, err := sharded.Apply(ops)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(out1, out2) {
					t.Fatalf("Apply round %d ids diverge", round)
				}
				for i, op := range ops {
					if op.Kind == dyndbscan.OpInsert {
						live = append(live, out1[i])
					}
				}
				checkIsomorphic(t, single, sharded, fmt.Sprintf("after Apply round %d", round))
			}

			// Phase 3: single-op traffic.
			for i := 0; i < 30; i++ {
				pt := clusteredPoints(rng, tc.dims, 1, 1, 0)[0]
				id1, err := single.Insert(pt)
				if err != nil {
					t.Fatal(err)
				}
				id2, err := sharded.Insert(pt)
				if err != nil {
					t.Fatal(err)
				}
				if id1 != id2 {
					t.Fatalf("Insert ids diverge: %d vs %d", id1, id2)
				}
				live = append(live, id1)
				if tc.deletes && i%3 == 0 && len(live) > 1 {
					k := rng.Intn(len(live))
					if err := single.Delete(live[k]); err != nil {
						t.Fatal(err)
					}
					if err := sharded.Delete(live[k]); err != nil {
						t.Fatal(err)
					}
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
			checkIsomorphic(t, single, sharded, "after single ops")

			// Phase 4: batched deletion.
			if tc.deletes {
				n := len(live) / 3
				batch := append([]dyndbscan.PointID(nil), live[:n]...)
				if err := single.DeleteBatch(batch); err != nil {
					t.Fatal(err)
				}
				if err := sharded.DeleteBatch(batch); err != nil {
					t.Fatal(err)
				}
				live = live[n:]
				checkIsomorphic(t, single, sharded, "after batch delete")
			}

			// Cross-check the point-level read surface on a sample.
			for i := 0; i < 25 && i < len(live); i++ {
				id := live[i]
				c1, ok1 := single.ClusterOf(id)
				c2, ok2 := sharded.ClusterOf(id)
				if ok1 != ok2 || len(c1) != len(c2) {
					t.Fatalf("ClusterOf(%d) membership count mismatch: %v/%v vs %v/%v", id, c1, ok1, c2, ok2)
				}
				if !sharded.Has(id) {
					t.Fatalf("sharded.Has(%d) = false for live point", id)
				}
			}
		})
	}
}

// TestShardedValidation covers the sharded engine's option and update
// validation surface.
func TestShardedValidation(t *testing.T) {
	if _, err := dyndbscan.New(dyndbscan.WithEps(1), dyndbscan.WithMinPts(2), dyndbscan.WithShards(0)); err == nil {
		t.Fatal("WithShards(0) accepted")
	}
	if _, err := dyndbscan.New(dyndbscan.WithEps(1), dyndbscan.WithMinPts(2), dyndbscan.WithShardStripe(0)); err == nil {
		t.Fatal("WithShardStripe(0) accepted")
	}
	if _, err := dyndbscan.New(
		dyndbscan.WithEps(1), dyndbscan.WithMinPts(2),
		dyndbscan.WithShards(2), dyndbscan.WithThreadSafety(false),
	); err == nil {
		t.Fatal("WithShards(2) + WithThreadSafety(false) accepted")
	}
	// WithShardStripe is meaningless without sharding: a silent no-op until
	// this PR, now a construction error.
	if _, err := dyndbscan.New(
		dyndbscan.WithEps(1), dyndbscan.WithMinPts(2), dyndbscan.WithShardStripe(8),
	); err == nil {
		t.Fatal("WithShardStripe without WithShards(n>1) accepted")
	}
	if _, err := dyndbscan.New(
		dyndbscan.WithEps(1), dyndbscan.WithMinPts(2),
		dyndbscan.WithShards(1), dyndbscan.WithShardStripe(8),
	); err == nil {
		t.Fatal("WithShardStripe with WithShards(1) accepted")
	}
	// Same for the rebalancing policy, which also rejects negative fields.
	if _, err := dyndbscan.New(
		dyndbscan.WithEps(1), dyndbscan.WithMinPts(2),
		dyndbscan.WithRebalance(dyndbscan.DefaultRebalancePolicy()),
	); err == nil {
		t.Fatal("WithRebalance without WithShards(n>1) accepted")
	}
	if _, err := dyndbscan.New(
		dyndbscan.WithEps(1), dyndbscan.WithMinPts(2), dyndbscan.WithShards(2),
		dyndbscan.WithRebalance(dyndbscan.RebalancePolicy{MaxImbalance: -2}),
	); err == nil {
		t.Fatal("WithRebalance with a negative field accepted")
	}

	e, err := dyndbscan.New(dyndbscan.WithEps(10), dyndbscan.WithMinPts(3),
		dyndbscan.WithShards(2), dyndbscan.WithRho(0))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", e.Shards())
	}
	id, err := e.Insert(dyndbscan.Point{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(dyndbscan.Point{1}); !errors.Is(err, dyndbscan.ErrBadPoint) {
		t.Fatalf("short point: got %v, want ErrBadPoint", err)
	}
	if err := e.Delete(id + 99); !errors.Is(err, dyndbscan.ErrUnknownPoint) {
		t.Fatalf("unknown delete: got %v, want ErrUnknownPoint", err)
	}
	if err := e.DeleteBatch([]dyndbscan.PointID{id, id}); !errors.Is(err, dyndbscan.ErrDuplicateID) {
		t.Fatalf("dup batch: got %v, want ErrDuplicateID", err)
	}
	if err := e.DeleteBatch([]dyndbscan.PointID{id, id + 99}); !errors.Is(err, dyndbscan.ErrUnknownPoint) {
		t.Fatalf("unknown batch: got %v, want ErrUnknownPoint", err)
	}
	if e.Has(id) != true || e.Len() != 1 {
		t.Fatal("failed DeleteBatch mutated state")
	}
	if _, err := e.Apply([]dyndbscan.Op{dyndbscan.InsertOp(dyndbscan.Point{2, 2}), dyndbscan.DeleteOp(id + 99)}); !errors.Is(err, dyndbscan.ErrUnknownPoint) {
		t.Fatalf("Apply unknown delete: got %v, want ErrUnknownPoint", err)
	}
	if e.Len() != 1 {
		t.Fatalf("failed Apply partially committed: Len = %d, want 1", e.Len())
	}

	// Insertion-only algorithm: deletes are rejected without state change.
	se, err := dyndbscan.New(dyndbscan.WithEps(10), dyndbscan.WithMinPts(3),
		dyndbscan.WithAlgorithm(dyndbscan.AlgoSemiDynamic), dyndbscan.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	sid, err := se.Insert(dyndbscan.Point{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := se.Delete(sid); !errors.Is(err, dyndbscan.ErrDeletesUnsupported) {
		t.Fatalf("semi delete: got %v, want ErrDeletesUnsupported", err)
	}
	if err := se.DeleteBatch([]dyndbscan.PointID{sid}); !errors.Is(err, dyndbscan.ErrDeletesUnsupported) {
		t.Fatalf("semi batch delete: got %v, want ErrDeletesUnsupported", err)
	}
	if !se.Has(sid) {
		t.Fatal("rejected delete removed the point")
	}
}

// TestShardedStableIDs verifies the stitched global cluster ids behave like
// the single-backend stable ids: they survive unrelated updates, a merge
// keeps one of the two ids, and a split keeps the old id on one fragment.
func TestShardedStableIDs(t *testing.T) {
	e, err := dyndbscan.New(
		dyndbscan.WithEps(10), dyndbscan.WithMinPts(3), dyndbscan.WithRho(0),
		dyndbscan.WithShards(3), dyndbscan.WithShardStripe(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	blob := func(cx float64, n int) []dyndbscan.Point {
		pts := make([]dyndbscan.Point, n)
		for i := range pts {
			pts[i] = dyndbscan.Point{cx + float64(i%3), float64(i / 3)}
		}
		return pts
	}
	leftIDs, err := e.InsertBatch(blob(0, 9))
	if err != nil {
		t.Fatal(err)
	}
	cidsL, ok := e.ClusterOf(leftIDs[0])
	if !ok || len(cidsL) != 1 {
		t.Fatalf("left blob membership: %v %v", cidsL, ok)
	}
	left := cidsL[0]

	// An unrelated faraway blob must not disturb the left cluster's id.
	rightIDs, err := e.InsertBatch(blob(500, 9))
	if err != nil {
		t.Fatal(err)
	}
	cidsL2, _ := e.ClusterOf(leftIDs[0])
	if len(cidsL2) != 1 || cidsL2[0] != left {
		t.Fatalf("left id changed after unrelated insert: %v -> %v", left, cidsL2)
	}
	cidsR, _ := e.ClusterOf(rightIDs[0])
	if len(cidsR) != 1 || cidsR[0] == left {
		t.Fatalf("right blob id: %v", cidsR)
	}
	right := cidsR[0]

	// Bridge them: the merged cluster keeps one of the two ids.
	var bridge []dyndbscan.Point
	for x := 3.0; x < 500; x += 3 {
		bridge = append(bridge, dyndbscan.Point{x, 0}, dyndbscan.Point{x + 1, 0}, dyndbscan.Point{x + 2, 0})
	}
	bridgeIDs, err := e.InsertBatch(bridge)
	if err != nil {
		t.Fatal(err)
	}
	merged, _ := e.ClusterOf(leftIDs[0])
	if len(merged) != 1 || (merged[0] != left && merged[0] != right) {
		t.Fatalf("merged id %v is neither %v nor %v", merged, left, right)
	}
	if mr, _ := e.ClusterOf(rightIDs[0]); len(mr) != 1 || mr[0] != merged[0] {
		t.Fatalf("blobs not merged: %v vs %v", merged, mr)
	}

	// Split them again: one fragment keeps the merged id.
	if err := e.DeleteBatch(bridgeIDs); err != nil {
		t.Fatal(err)
	}
	sl, _ := e.ClusterOf(leftIDs[0])
	sr, _ := e.ClusterOf(rightIDs[0])
	if len(sl) != 1 || len(sr) != 1 || sl[0] == sr[0] {
		t.Fatalf("split failed: %v vs %v", sl, sr)
	}
	if sl[0] != merged[0] && sr[0] != merged[0] {
		t.Fatalf("no fragment kept the merged id %v: %v / %v", merged[0], sl, sr)
	}
}

// TestShardedEvents verifies the sharded event stream: global handles in
// point events, and cluster transitions (formed / merged / split /
// dissolved) derived by the stitch diff, delivered in commit order.
func TestShardedEvents(t *testing.T) {
	e, err := dyndbscan.New(
		dyndbscan.WithEps(10), dyndbscan.WithMinPts(3), dyndbscan.WithRho(0),
		dyndbscan.WithShards(3), dyndbscan.WithShardStripe(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	var mu sync.Mutex
	var events []dyndbscan.Event
	cancel := e.Subscribe(func(ev dyndbscan.Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	defer cancel()
	// Validate the derived global stream invariants on a second subscription.
	val := evcheck.New()
	cancelVal := e.Subscribe(val.Observe)
	defer cancelVal()
	count := func(kind dyndbscan.EventKind) int {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for _, ev := range events {
			if ev.Kind == kind {
				n++
			}
		}
		return n
	}

	blob := func(cx float64, n int) []dyndbscan.Point {
		pts := make([]dyndbscan.Point, n)
		for i := range pts {
			pts[i] = dyndbscan.Point{cx + float64(i%3), float64(i / 3)}
		}
		return pts
	}
	leftIDs, err := e.InsertBatch(blob(0, 9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.InsertBatch(blob(300, 9)); err != nil {
		t.Fatal(err)
	}
	e.Sync()
	if got := count(dyndbscan.EventClusterFormed); got < 2 {
		t.Fatalf("formed events = %d, want ≥ 2", got)
	}
	// Point events must carry global handles.
	mu.Lock()
	for _, ev := range events {
		if ev.Kind == dyndbscan.EventPointBecameCore {
			if !e.Has(ev.Point) {
				t.Fatalf("core event for unknown global handle %d", ev.Point)
			}
		}
	}
	mu.Unlock()

	// Bridge: exactly one merged cluster transition.
	var bridge []dyndbscan.Point
	for x := 3.0; x < 300; x += 3 {
		bridge = append(bridge, dyndbscan.Point{x, 0}, dyndbscan.Point{x + 1, 0}, dyndbscan.Point{x + 2, 0})
	}
	bridgeIDs, err := e.InsertBatch(bridge)
	if err != nil {
		t.Fatal(err)
	}
	e.Sync()
	if got := count(dyndbscan.EventClusterMerged); got < 1 {
		t.Fatalf("merged events = %d, want ≥ 1", got)
	}

	// Cut the bridge: a split.
	if err := e.DeleteBatch(bridgeIDs); err != nil {
		t.Fatal(err)
	}
	e.Sync()
	if got := count(dyndbscan.EventClusterSplit); got < 1 {
		t.Fatalf("split events = %d, want ≥ 1", got)
	}

	// Remove one blob entirely: a dissolve.
	if err := e.DeleteBatch(leftIDs); err != nil {
		t.Fatal(err)
	}
	e.Sync()
	if got := count(dyndbscan.EventClusterDissolved); got < 1 {
		t.Fatalf("dissolved events = %d, want ≥ 1", got)
	}

	if err := val.Err(); err != nil {
		t.Fatal(err)
	}
	if err := val.ReconcileLive(e.Snapshot().ClusterIDs()); err != nil {
		t.Fatal(err)
	}
	if err := e.SeamAudit(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedConcurrentCommits hammers a sharded engine with parallel mixed
// batches and concurrent snapshot readers, then checks the surviving
// clustering against a single-shard engine fed the same final point set.
// Run with -race.
func TestShardedConcurrentCommits(t *testing.T) {
	e, err := dyndbscan.New(
		dyndbscan.WithEps(30), dyndbscan.WithMinPts(4), dyndbscan.WithRho(0),
		dyndbscan.WithShards(4), dyndbscan.WithShardStripe(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const (
		writers = 4
		rounds  = 12
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readers sync.WaitGroup
	// Readers: exercise the stitched snapshot path concurrently with commits.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := e.Snapshot()
				for cid := range snap.Clusters {
					snap.Members(cid)
					break
				}
				_ = e.Len()
			}
		}()
	}
	// Writers: each churns its own points, so batches overlap on shards but
	// never on handles; every writer records its surviving coordinates for
	// the reference check below.
	surviving := make([]map[dyndbscan.PointID]dyndbscan.Point, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			mine := make(map[dyndbscan.PointID]dyndbscan.Point)
			var live []dyndbscan.PointID
			for round := 0; round < rounds; round++ {
				ops := make([]dyndbscan.Op, 0, 40)
				var fresh []dyndbscan.Point
				for i := 0; i < 30; i++ {
					pt := dyndbscan.Point{-600 + rng.Float64()*1200, float64(w*50) + rng.Float64()*40}
					fresh = append(fresh, pt)
					ops = append(ops, dyndbscan.InsertOp(pt))
				}
				for i := 0; i < 10 && len(live) > 0; i++ {
					k := rng.Intn(len(live))
					ops = append(ops, dyndbscan.DeleteOp(live[k]))
					delete(mine, live[k])
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
				}
				out, err := e.Apply(ops)
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				next := 0
				for i, op := range ops {
					if op.Kind == dyndbscan.OpInsert {
						live = append(live, out[i])
						mine[out[i]] = fresh[next]
						next++
					}
				}
			}
			surviving[w] = mine
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	// Rebuild the surviving point set in a single-shard reference engine, in
	// ascending global id order; with Rho = 0 the clustering is a pure
	// function of the point set, so the partitions must match regardless of
	// the interleaving that produced them.
	all := make(map[dyndbscan.PointID]dyndbscan.Point)
	for _, m := range surviving {
		for id, pt := range m {
			all[id] = pt
		}
	}
	if got := e.Len(); got != len(all) {
		t.Fatalf("Len = %d, want %d surviving points", got, len(all))
	}
	ordered := make([]dyndbscan.PointID, 0, len(all))
	for id := range all {
		ordered = append(ordered, id)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	ref, err := dyndbscan.New(dyndbscan.WithEps(30), dyndbscan.WithMinPts(4), dyndbscan.WithRho(0))
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]dyndbscan.Point, len(ordered))
	for i, id := range ordered {
		pts[i] = all[id]
	}
	refIDs, err := ref.InsertBatch(pts)
	if err != nil {
		t.Fatal(err)
	}
	toGlobal := make(map[dyndbscan.PointID]dyndbscan.PointID, len(refIDs))
	for i, rid := range refIDs {
		toGlobal[rid] = ordered[i]
	}
	refAll, err := ref.GroupAll()
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range refAll.Groups {
		for i, rid := range g {
			refAll.Groups[gi][i] = toGlobal[rid]
		}
	}
	for i, rid := range refAll.Noise {
		refAll.Noise[i] = toGlobal[rid]
	}
	refAll.Normalize()
	shardedAll, err := e.GroupAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refAll.Groups, shardedAll.Groups) {
		t.Fatalf("final partition diverges: %d ref groups vs %d sharded groups",
			len(refAll.Groups), len(shardedAll.Groups))
	}
	if !(len(refAll.Noise) == 0 && len(shardedAll.Noise) == 0) && !reflect.DeepEqual(refAll.Noise, shardedAll.Noise) {
		t.Fatalf("final noise diverges")
	}
}

// TestStripeMigration drives directed stripe migrations (the MoveStripe test
// hook bypasses the load policy) and asserts the migration contract: point
// handles stay valid, ClusterIDs and the clustering are unchanged (Rho = 0),
// no spurious events reach subscribers, the seam survives its audit, and the
// engine keeps matching a single-shard reference through updates before,
// between, and after migrations — including migrating a stripe back to its
// original shard (which on insertion-only backends must reuse the stale
// copies instead of duplicating them).
func TestStripeMigration(t *testing.T) {
	cases := []struct {
		name    string
		algo    dyndbscan.Algorithm
		deletes bool
	}{
		{"FullyDynamic", dyndbscan.AlgoFullyDynamic, true},
		{"SemiDynamic", dyndbscan.AlgoSemiDynamic, false},
		{"IncDBSCAN", dyndbscan.AlgoIncDBSCAN, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			newEng := func(shards int) *dyndbscan.Engine {
				opts := []dyndbscan.Option{
					dyndbscan.WithAlgorithm(tc.algo),
					dyndbscan.WithEps(10), dyndbscan.WithMinPts(3), dyndbscan.WithRho(0),
					dyndbscan.WithShards(shards),
				}
				if shards > 1 {
					opts = append(opts, dyndbscan.WithShardStripe(8))
				}
				e, err := dyndbscan.New(opts...)
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			e := newEng(3)
			defer e.Close()
			ref := newEng(1)
			defer ref.Close()

			var mu sync.Mutex
			var clusterEvents int
			cancel := e.Subscribe(func(ev dyndbscan.Event) {
				switch ev.Kind {
				case dyndbscan.EventClusterFormed, dyndbscan.EventClusterMerged,
					dyndbscan.EventClusterSplit, dyndbscan.EventClusterDissolved:
					mu.Lock()
					clusterEvents++
					mu.Unlock()
				}
			})
			defer cancel()
			val := evcheck.New()
			cancelVal := e.Subscribe(val.Observe)
			defer cancelVal()

			both := func(stage string, ops []dyndbscan.Op) []dyndbscan.PointID {
				t.Helper()
				out, err := e.Apply(ops)
				if err != nil {
					t.Fatalf("%s: sharded Apply: %v", stage, err)
				}
				outRef, err := ref.Apply(ops)
				if err != nil {
					t.Fatalf("%s: reference Apply: %v", stage, err)
				}
				if !reflect.DeepEqual(out, outRef) {
					t.Fatalf("%s: handles diverge across modes", stage)
				}
				checkIsomorphic(t, ref, e, stage)
				return out
			}
			check := func(stage string) {
				t.Helper()
				e.Sync()
				if err := val.Err(); err != nil {
					t.Fatalf("%s: event stream invalid: %v", stage, err)
				}
				if err := val.ReconcileLive(e.Snapshot().ClusterIDs()); err != nil {
					t.Fatalf("%s: events vs snapshot: %v", stage, err)
				}
				if err := e.SeamAudit(); err != nil {
					t.Fatalf("%s: %v", stage, err)
				}
				checkIsomorphic(t, ref, e, stage)
			}

			blob := func(cx float64, n int) []dyndbscan.Op {
				ops := make([]dyndbscan.Op, n)
				for i := range ops {
					ops[i] = dyndbscan.InsertOp(dyndbscan.Point{cx + float64(i%3), float64(i / 3)})
				}
				return ops
			}
			// Blob A sits inside stripe 0 (x ∈ [10, 13); the stripe covers
			// x ∈ [0, 56.6) at eps 10, width 8); blob B is far away.
			aIDs := both("insert blob A", blob(10, 9))
			both("insert blob B", blob(500, 9))
			check("before migration")

			cidsA, ok := e.ClusterOf(aIDs[0])
			if !ok || len(cidsA) != 1 {
				t.Fatalf("blob A membership: %v %v", cidsA, ok)
			}
			before := e.Snapshot().GroupAll()
			e.Sync()
			mu.Lock()
			evsBefore := clusterEvents
			mu.Unlock()

			if owner := e.StripeOwner(0); owner != 0 {
				t.Fatalf("stripe 0 owner = %d before any migration", owner)
			}
			e.MoveStripe(0, 1)
			if owner := e.StripeOwner(0); owner != 1 {
				t.Fatalf("stripe 0 owner = %d after MoveStripe(0, 1)", owner)
			}
			check("after migration")

			// The clustering, the ids, and the event stream are untouched.
			cidsA2, ok := e.ClusterOf(aIDs[0])
			if !ok || !reflect.DeepEqual(cidsA, cidsA2) {
				t.Fatalf("blob A ClusterID changed across migration: %v -> %v (live=%v)", cidsA, cidsA2, ok)
			}
			after := e.Snapshot().GroupAll()
			if !reflect.DeepEqual(before, after) {
				t.Fatalf("clustering changed across migration:\nbefore: %+v\nafter:  %+v", before, after)
			}
			e.Sync()
			mu.Lock()
			evsAfter := clusterEvents
			mu.Unlock()
			if evsAfter != evsBefore {
				t.Fatalf("migration leaked %d cluster events (Rho = 0 migrations are silent)", evsAfter-evsBefore)
			}

			// Updates against the migrated stripe: a new blob lands in
			// stripe 0 under its new owner and a bridge merges it with A.
			both("insert blob C post-migration", blob(30, 9))
			bridge := make([]dyndbscan.Op, 0, 18)
			for x := 13.0; x < 30; x += 2 {
				bridge = append(bridge, dyndbscan.InsertOp(dyndbscan.Point{x, 0}), dyndbscan.InsertOp(dyndbscan.Point{x + 1, 0}))
			}
			bridgeIDs := both("bridge A-C", bridge)
			merged, _ := e.ClusterOf(aIDs[0])
			if len(merged) != 1 {
				t.Fatalf("A not in one cluster after bridge: %v", merged)
			}
			check("after post-migration updates")

			if tc.deletes {
				del := make([]dyndbscan.Op, len(bridgeIDs))
				for i, id := range bridgeIDs {
					del[i] = dyndbscan.DeleteOp(id)
				}
				both("cut bridge", del)
				check("after post-migration split")
			}

			// Migrate back: on insertion-only backends this must reuse the
			// stale source copies rather than duplicate them (a duplicate
			// would inflate densities and break the reference equivalence).
			e.MoveStripe(0, 0)
			check("after migrating back")
			e.MoveStripe(0, 2)
			check("after third migration")

			both("growth after migrations", blob(14, 9))
			check("final")
		})
	}
}

// TestAdaptiveStripeWidth covers the cold-start width decision: without
// WithShardStripe the width derives from the first committed batch's extent,
// so a spatially compact workload spreads across shards instead of landing
// in one 64-cell stripe; a wide workload keeps the default cap. Explicit
// widths are clamped to just past the ghost band.
func TestAdaptiveStripeWidth(t *testing.T) {
	// 2D, Rho = 0: the ghost band is always 4 cells, so the minimum
	// (clamped) width is 5 regardless of eps.
	const minWidth = 5

	narrow, err := dyndbscan.New(
		dyndbscan.WithEps(30), dyndbscan.WithMinPts(4), dyndbscan.WithRho(0),
		dyndbscan.WithShards(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer narrow.Close()
	if got := narrow.StripeCells(); got != dyndbscan.DefaultStripeCells {
		t.Fatalf("provisional width = %d, want %d before the first commit", got, dyndbscan.DefaultStripeCells)
	}
	rng := rand.New(rand.NewSource(5))
	pts := make([]dyndbscan.Point, 400)
	for i := range pts {
		pts[i] = dyndbscan.Point{rng.Float64() * 200, rng.Float64() * 200}
	}
	if _, err := narrow.InsertBatch(pts); err != nil {
		t.Fatal(err)
	}
	// Extent ≈ 10 cells (200 units / 21.2 per cell) over 4 shards → clamped
	// to the minimum width, spreading the compact workload across shards.
	if got := narrow.StripeCells(); got != minWidth {
		t.Fatalf("adaptive width = %d, want %d for a compact extent", got, minWidth)
	}
	spread := 0
	for _, sl := range narrow.ShardLoads() {
		if sl.Points > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("compact workload landed on %d shard(s); adaptive width should spread it", spread)
	}

	wide, err := dyndbscan.New(
		dyndbscan.WithEps(30), dyndbscan.WithMinPts(4), dyndbscan.WithRho(0),
		dyndbscan.WithShards(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer wide.Close()
	for i := range pts {
		pts[i] = dyndbscan.Point{rng.Float64() * 50000, rng.Float64() * 200}
	}
	if _, err := wide.InsertBatch(pts); err != nil {
		t.Fatal(err)
	}
	if got := wide.StripeCells(); got != dyndbscan.DefaultStripeCells {
		t.Fatalf("adaptive width = %d, want the %d-cell cap for a wide extent", got, dyndbscan.DefaultStripeCells)
	}

	// Satellite regression: a tiny explicit stripe with a large Eps used to
	// replicate every cell into many shards; the effective width is now
	// clamped to one cell past the ghost band.
	clamped, err := dyndbscan.New(
		dyndbscan.WithEps(100), dyndbscan.WithMinPts(3), dyndbscan.WithRho(0),
		dyndbscan.WithShards(4), dyndbscan.WithShardStripe(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer clamped.Close()
	if got := clamped.StripeCells(); got != minWidth {
		t.Fatalf("WithShardStripe(1) effective width = %d, want clamp to %d", got, minWidth)
	}
	single, err := dyndbscan.New(dyndbscan.WithEps(100), dyndbscan.WithMinPts(3), dyndbscan.WithRho(0))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	for i := range pts {
		pts[i] = dyndbscan.Point{-2000 + rng.Float64()*4000, rng.Float64() * 500}
	}
	if _, err := clamped.InsertBatch(pts); err != nil {
		t.Fatal(err)
	}
	if _, err := single.InsertBatch(pts); err != nil {
		t.Fatal(err)
	}
	checkIsomorphic(t, single, clamped, "clamped stripe equivalence")

	// Widths above the clamp are taken as given.
	explicit, err := dyndbscan.New(
		dyndbscan.WithEps(10), dyndbscan.WithMinPts(3),
		dyndbscan.WithShards(2), dyndbscan.WithShardStripe(10),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer explicit.Close()
	if got := explicit.StripeCells(); got != 10 {
		t.Fatalf("WithShardStripe(10) effective width = %d", got)
	}
}

// TestAdaptiveWidthRederivation covers the width decision past the cold
// start: when the workload wanders far enough that the derived width differs
// ≥4x from the one in effect, the engine re-derives at its commit cadence,
// logs the change as one wal.OpWidth record, and keeps the clustering
// equivalent to a single backend — and replay flips the width at the same
// point in the op stream, so a reopened engine lands on the same placement.
func TestAdaptiveWidthRederivation(t *testing.T) {
	dir := t.TempDir()
	eng, err := dyndbscan.New(
		dyndbscan.WithEps(30), dyndbscan.WithMinPts(4), dyndbscan.WithRho(0),
		dyndbscan.WithShards(4),
		dyndbscan.WithWAL(dir, dyndbscan.SyncAlways()),
		dyndbscan.WithWALCheckpointEvery(0), // reopen must replay the width flip
	)
	if err != nil {
		t.Fatal(err)
	}
	single, err := dyndbscan.New(
		dyndbscan.WithEps(30), dyndbscan.WithMinPts(4), dyndbscan.WithRho(0))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()

	// First commit: a compact extent (~160 cells over 16 stripes) derives a
	// narrow width.
	rng := rand.New(rand.NewSource(9))
	pts := make([]dyndbscan.Point, 400)
	for i := range pts {
		pts[i] = dyndbscan.Point{rng.Float64() * 3400, rng.Float64() * 200}
	}
	if _, err := eng.InsertBatch(pts); err != nil {
		t.Fatal(err)
	}
	if _, err := single.InsertBatch(pts); err != nil {
		t.Fatal(err)
	}
	w0 := eng.StripeCells()
	if w0 <= 5 || w0 > 11 {
		t.Fatalf("first-commit width = %d, want a derived narrow width in (5, 11]", w0)
	}

	// The workload wanders: isolated singles marching out to x ≈ 156k. By the
	// width check the derived width hits the cell cap, ≥4x the narrow one.
	for i := 0; i < 80; i++ {
		pt := dyndbscan.Point{3400 + float64(i+1)*1900, 100}
		if _, err := eng.Insert(pt); err != nil {
			t.Fatal(err)
		}
		if _, err := single.Insert(pt); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.StripeCells(); got != dyndbscan.DefaultStripeCells {
		t.Fatalf("width after wandering = %d, want re-derived %d", got, dyndbscan.DefaultStripeCells)
	}
	checkIsomorphic(t, single, eng, "after width re-derivation")
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// The re-derivation is in the log exactly once, as a placement record.
	r, err := wal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	widths := 0
	for {
		_, ops, err := r.Next()
		if errors.Is(err, wal.ErrCaughtUp) {
			break
		}
		if err != nil {
			t.Fatalf("scanning the log: %v", err)
		}
		for _, op := range ops {
			if op.Kind == wal.OpWidth {
				widths++
				if op.ID != int64(dyndbscan.DefaultStripeCells) {
					t.Fatalf("OpWidth logged %d, want %d", op.ID, dyndbscan.DefaultStripeCells)
				}
			}
		}
	}
	r.Close()
	if widths != 1 {
		t.Fatalf("log holds %d OpWidth records, want exactly 1", widths)
	}

	// Replay (no checkpoint was ever written) re-derives through the record.
	re, err := dyndbscan.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.StripeCells(); got != dyndbscan.DefaultStripeCells {
		t.Fatalf("replayed width = %d, want %d", got, dyndbscan.DefaultStripeCells)
	}
	checkIsomorphic(t, single, re, "replayed width re-derivation")
}

// TestAutoRebalance drives hotspot traffic whose hot stripes alias onto one
// shard through the round-robin, with automatic rebalancing enabled, and
// asserts the engine separates them — then hammers the same configuration
// from concurrent writers with a validating subscriber attached (run with
// -race: commits racing automatic migrations exercise the placement-epoch
// re-route path).
func TestAutoRebalance(t *testing.T) {
	newEng := func() *dyndbscan.Engine {
		e, err := dyndbscan.New(
			dyndbscan.WithEps(10), dyndbscan.WithMinPts(4), dyndbscan.WithRho(0),
			dyndbscan.WithShards(2), dyndbscan.WithShardStripe(8),
			dyndbscan.WithRebalance(dyndbscan.RebalancePolicy{
				MaxImbalance: 1.01, MinLoad: 1, CheckEvery: 4,
			}),
		)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	// Stripes 0 (x ∈ [0, 56.6)) and 2 (x ∈ [113.1, 169.7)) both map to
	// shard 0 under the round-robin: the aliased-hotspot pathology.
	hot := func(rng *rand.Rand) dyndbscan.Point {
		x := 5 + rng.Float64()*45
		if rng.Intn(2) == 1 {
			x += 113
		}
		return dyndbscan.Point{x, rng.Float64() * 40}
	}

	t.Run("separates aliased hot stripes", func(t *testing.T) {
		e := newEng()
		defer e.Close()
		rng := rand.New(rand.NewSource(9))
		var live []dyndbscan.PointID
		for round := 0; round < 80; round++ {
			ops := make([]dyndbscan.Op, 0, 24)
			for i := 0; i < 20; i++ {
				ops = append(ops, dyndbscan.InsertOp(hot(rng)))
			}
			for i := 0; i < 4 && len(live) > 0; i++ {
				k := rng.Intn(len(live))
				ops = append(ops, dyndbscan.DeleteOp(live[k]))
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			out, err := e.Apply(ops)
			if err != nil {
				t.Fatal(err)
			}
			for i, op := range ops {
				if op.Kind == dyndbscan.OpInsert {
					live = append(live, out[i])
				}
			}
		}
		if a, b := e.StripeOwner(0), e.StripeOwner(2); a == b {
			t.Fatalf("hot stripes 0 and 2 still share shard %d after automatic rebalancing\nloads: %+v",
				a, e.ShardLoads())
		}
	})

	t.Run("concurrent writers", func(t *testing.T) {
		e := newEng()
		defer e.Close()
		val := evcheck.New()
		cancel := e.Subscribe(val.Observe)
		defer cancel()
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(40 + w)))
				var live []dyndbscan.PointID
				for round := 0; round < 30; round++ {
					ops := make([]dyndbscan.Op, 0, 16)
					for i := 0; i < 12; i++ {
						ops = append(ops, dyndbscan.InsertOp(hot(rng)))
					}
					for i := 0; i < 4 && len(live) > 0; i++ {
						k := rng.Intn(len(live))
						ops = append(ops, dyndbscan.DeleteOp(live[k]))
						live[k] = live[len(live)-1]
						live = live[:len(live)-1]
					}
					out, err := e.Apply(ops)
					if err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
					for i, op := range ops {
						if op.Kind == dyndbscan.OpInsert {
							live = append(live, out[i])
						}
					}
				}
			}(w)
		}
		wg.Wait()
		e.Sync()
		if err := val.Err(); err != nil {
			t.Fatalf("event stream invalid under racing migrations: %v", err)
		}
		if err := val.ReconcileLive(e.Snapshot().ClusterIDs()); err != nil {
			t.Fatalf("events vs snapshot: %v", err)
		}
		if err := e.SeamAudit(); err != nil {
			t.Fatal(err)
		}
	})
}
