// Package dyndbscan maintains density-based (DBSCAN) clusters over a
// dynamic set of points, implementing "Dynamic Density Based Clustering"
// (Gan & Tao, SIGMOD 2017) behind a service-ready Engine API.
//
// # Overview
//
// Classical DBSCAN defines clusters by transitivity of proximity: a point is
// a core point when at least MinPts points lie within distance Eps of it,
// core points within Eps of each other share a cluster, and non-core points
// join the clusters of the core points near them. Maintaining such clusters
// under updates is hard because one insertion can merge many clusters and
// one deletion can split a cluster apart.
//
// The paper's approach — reproduced here in full — maintains a grid graph
// over "core cells" of a grid with cell side Eps/√d and reduces cluster
// maintenance to dynamic graph connectivity, giving near-constant amortized
// update cost and C-group-by queries in time proportional to the query size.
//
// # Quick start
//
// Engine is the recommended entry point; construct one with New and
// functional options:
//
//	e, err := dyndbscan.New(
//		dyndbscan.WithEps(10),
//		dyndbscan.WithMinPts(5),
//	)
//	if err != nil { ... }
//	ids, _ := e.InsertBatch([]dyndbscan.Point{{1, 2}, {2, 3}})
//	res, _ := e.GroupBy(ids)
//	if res.SameGroup(ids[0], ids[1]) { ... }
//
// Beyond single-point Insert/Delete and the paper's C-group-by query, the
// Engine offers:
//
//   - InsertBatch / DeleteBatch / Apply — amortize locking and validation
//     across a batch of updates (the natural unit for a service ingesting
//     streams); Apply commits a mixed insert/delete batch as one epoch.
//     Batch pre-processing (validation, grid assignment) runs in parallel
//     across WithWorkers goroutines before the serialized commit.
//   - Stable cluster identities — ClusterOf, Members, and versioned
//     Snapshots name clusters by ClusterID values that survive every update
//     that does not merge or split the cluster.
//   - Subscribe — an asynchronous change-event stream (ClusterFormed /
//     ClusterMerged / ClusterSplit / ClusterDissolved / PointBecameCore /
//     PointBecameNoise) emitted as updates reshape the clustering, with
//     per-subscriber buffering and overflow policies; Sync is the delivery
//     barrier.
//   - Thread safety by default, with a lock-free read path: once a
//     snapshot exists for the current version, Snapshot / ClusterOf /
//     Members / Version / GroupBy / GroupAll touch no lock at all.
//
// # Choosing an algorithm
//
// WithAlgorithm selects among three algorithms:
//
//   - AlgoFullyDynamic (default): fully dynamic ρ-double-approximate DBSCAN
//     with O~(1) amortized insertion and deletion (Theorem 4). With Rho = 0
//     in 2D it maintains exact DBSCAN clusters.
//   - AlgoSemiDynamic: insertion-only ρ-approximate DBSCAN with O~(1)
//     amortized insertion (Theorem 1); deletions are rejected.
//   - AlgoIncDBSCAN: the incremental exact DBSCAN of Ester et al. (1998),
//     the baseline the paper compares against; deletions can trigger
//     cluster-wide searches.
//
// The approximation parameter Rho trades a sliver of precision near the
// Eps boundary for dramatically better update complexity; the paper
// recommends Rho = 0.001 (the default), at which the result is virtually
// always identical to exact DBSCAN (formally: identical whenever the exact
// clustering is stable under perturbing Eps by a factor 1+Rho).
//
// The NewSemiDynamic / NewFullyDynamic / NewIncDBSCAN constructors remain as
// the low-level SPI: they return bare single-threaded clusterers with no
// batching, snapshots, or events. Config carries the raw parameters for
// them. New code should use New; existing callers can adopt the Engine
// features by wrapping a bare clusterer with Wrap.
package dyndbscan

import (
	"dyndbscan/internal/core"
	"dyndbscan/internal/geom"
)

// Point is a point in R^d. It must carry at least Config.Dims coordinates;
// extra coordinates are ignored.
type Point = geom.Point

// PointID is the stable handle returned by Insert and consumed by Delete and
// GroupBy.
type PointID = core.PointID

// Config carries the DBSCAN parameters.
//
// Dims is the dimensionality d (1..8; the paper evaluates 2, 3, 5, 7).
// Eps is the density radius ε. MinPts is the density threshold. Rho is the
// approximation parameter ρ ≥ 0; 0 requests exact semantics.
type Config = core.Config

// Result is the answer to a C-group-by query: the queried points grouped by
// cluster, plus the queried points that belong to no cluster (noise). A
// non-core point on the border of several clusters appears in several
// groups.
type Result = core.Result

// Stats is a snapshot of a clusterer's structural counters.
type Stats = core.Stats

// Errors returned by the clusterers.
var (
	ErrDeletesUnsupported = core.ErrDeletesUnsupported
	ErrUnknownPoint       = core.ErrUnknownPoint
	ErrBadPoint           = core.ErrBadPoint
)

// Clusterer is the common interface of the three dynamic clustering
// algorithms.
type Clusterer interface {
	// Insert adds a point and returns its handle.
	Insert(pt Point) (PointID, error)
	// Delete removes a point. Semi-dynamic clusterers return
	// ErrDeletesUnsupported.
	Delete(id PointID) error
	// GroupBy answers a C-group-by query over the given handles.
	GroupBy(q []PointID) (Result, error)
	// Len returns the number of points currently stored.
	Len() int
	// IDs returns every live handle (for the degenerate query Q = P).
	IDs() []PointID
	// Has reports whether the handle is live.
	Has(id PointID) bool
	// Config returns the clusterer's configuration.
	Config() Config
}

// SemiDynamic is the insertion-only ρ-approximate clusterer (Theorem 1).
type SemiDynamic struct{ *core.SemiDynamic }

// NewSemiDynamic returns an empty semi-dynamic clusterer.
//
// Deprecated: use New(WithAlgorithm(AlgoSemiDynamic), ...) to get an Engine
// with batching, snapshots, and events; NewSemiDynamic remains as the
// low-level SPI.
func NewSemiDynamic(cfg Config) (*SemiDynamic, error) {
	s, err := core.NewSemiDynamic(cfg)
	if err != nil {
		return nil, err
	}
	return &SemiDynamic{s}, nil
}

// FullyDynamic is the fully dynamic ρ-double-approximate clusterer
// (Theorem 4).
type FullyDynamic struct{ *core.FullyDynamic }

// NewFullyDynamic returns an empty fully-dynamic clusterer.
//
// Deprecated: use New(...) — AlgoFullyDynamic is the default algorithm — to
// get an Engine with batching, snapshots, and events; NewFullyDynamic
// remains as the low-level SPI.
func NewFullyDynamic(cfg Config) (*FullyDynamic, error) {
	f, err := core.NewFullyDynamic(cfg)
	if err != nil {
		return nil, err
	}
	return &FullyDynamic{f}, nil
}

// IncDBSCAN is the incremental exact DBSCAN baseline of Ester et al. (1998).
type IncDBSCAN struct{ *core.IncDBSCAN }

// NewIncDBSCAN returns an empty IncDBSCAN instance. Rho is ignored (the
// algorithm is exact). Range queries are served from the grid, the faster
// configuration.
//
// Deprecated: use New(WithAlgorithm(AlgoIncDBSCAN), ...) to get an Engine
// with batching, snapshots, and events; NewIncDBSCAN remains as the
// low-level SPI.
func NewIncDBSCAN(cfg Config) (*IncDBSCAN, error) {
	ic, err := core.NewIncDBSCAN(cfg)
	if err != nil {
		return nil, err
	}
	return &IncDBSCAN{ic}, nil
}

// NewIncDBSCANRTree returns an IncDBSCAN whose range queries run against a
// Guttman R-tree, matching the original 1998 system's setup. Slower than
// NewIncDBSCAN; provided for historical fidelity and ablations.
func NewIncDBSCANRTree(cfg Config) (*IncDBSCAN, error) {
	ic, err := core.NewIncDBSCANRTree(cfg)
	if err != nil {
		return nil, err
	}
	return &IncDBSCAN{ic}, nil
}

// Static clustering oracle.

// StaticClustering is the output of the offline exact DBSCAN oracle.
type StaticClustering = core.StaticClustering

// StaticDBSCAN computes the exact DBSCAN clustering of pts offline. It is
// quadratic in dense neighborhoods and intended for validation and small
// data, not production workloads — that is what the dynamic clusterers are
// for.
func StaticDBSCAN(pts []Point, dims int, eps float64, minPts int) *StaticClustering {
	return core.StaticDBSCAN(pts, dims, eps, minPts)
}

// Compile-time interface checks.
var (
	_ Clusterer = (*SemiDynamic)(nil)
	_ Clusterer = (*FullyDynamic)(nil)
	_ Clusterer = (*IncDBSCAN)(nil)
)
