package dyndbscan

import (
	"sort"
	"sync/atomic"

	"dyndbscan/internal/pipeline"
)

// OverflowPolicy selects what happens when a subscriber's event queue is
// full because its callback is slower than the update stream.
type OverflowPolicy int

const (
	// BlockSubscriber (the default) applies backpressure: the updater blocks
	// until the subscriber drains. No event is ever lost, at the price that a
	// persistently slow subscriber eventually stalls updates again once its
	// buffer is exhausted. Lossless backpressure is fundamentally
	// incompatible with update re-entrancy: a callback that performs an
	// event-producing update while its own queue is full would be waiting on
	// a drain that only it can perform — the Engine detects this situation
	// and panics with a diagnosable message rather than hanging. The panic
	// marks a programming error and is not recoverable (the event pipeline
	// is wedged afterwards, like a map after a concurrent write). Callbacks
	// on a BlockSubscriber subscription should therefore not update the
	// Engine (queries are always fine); use DropOldest for subscribers that
	// write back.
	BlockSubscriber OverflowPolicy = iota
	// DropOldest keeps updates flowing no matter what: when the buffer is
	// full the oldest undelivered event is discarded. Delivery order is still
	// commit order; the stream just becomes lossy under sustained overload.
	DropOldest
)

// DefaultEventBuffer is the per-subscriber queue capacity used when
// SubscribeBuffer is not given.
const DefaultEventBuffer = 1024

// SubscribeOption configures one subscription; see Subscribe.
type SubscribeOption func(*subSettings)

type subSettings struct {
	buffer   int
	overflow OverflowPolicy
}

// SubscribeBuffer sets the subscriber's queue capacity (default
// DefaultEventBuffer; minimum 1).
func SubscribeBuffer(n int) SubscribeOption {
	return func(s *subSettings) { s.buffer = n }
}

// SubscribeOverflow sets the subscriber's overflow policy (default
// BlockSubscriber).
func SubscribeOverflow(p OverflowPolicy) SubscribeOption {
	return func(s *subSettings) { s.overflow = p }
}

// subscriber is one Subscribe registration: a bounded queue fed by the
// update paths (in commit order, admitted by publication ticket) and
// drained by a dedicated dispatcher goroutine running the callback. On an
// Engine with thread safety off there is no queue or goroutine (q is nil):
// delivery is synchronous on the updater's goroutine, preserving the
// single-goroutine confinement that WithThreadSafety(false) promises.
type subscriber struct {
	fn      func(Event)
	q       *pipeline.Queue[Event] // nil: synchronous delivery
	dropOld bool
	gid     atomic.Uint64 // dispatcher goroutine id, for self-feed detection
}

func (s *subscriber) run() {
	s.gid.Store(pipeline.GoroutineID())
	for {
		ev, ok := s.q.Get()
		if !ok {
			return
		}
		s.fn(ev)
		s.q.Done()
	}
}

// selfFeedPanic is the message of the fail-fast crash on the one
// unresolvable self-wait of async dispatch. The panic signals a programming
// error (like a concurrent map write): it is not recoverable — the
// publication chain is wedged afterwards — fix the subscriber instead.
const selfFeedPanic = "dyndbscan: deadlock: a subscriber callback performed an update while its own BlockSubscriber queue was full; use SubscribeOverflow(DropOldest) or a larger SubscribeBuffer for subscribers that write back into the Engine"

// enqueue delivers one event to an asynchronous subscriber, honoring its
// overflow policy. A lossless enqueue that is about to block re-checks who
// is blocking: if the publisher is the subscriber's own dispatcher (a
// callback performed an update while its own queue is full), waiting would
// deadlock the engine — room can only be made by the goroutine now waiting
// for it — so it panics with a diagnosable message instead of hanging.
func (e *Engine) enqueue(sub *subscriber, ev Event) bool {
	if sub.dropOld {
		return sub.q.Put(ev, true)
	}
	accepted, wouldBlock := sub.q.TryPut(ev)
	if !wouldBlock {
		return accepted
	}
	if sub.gid.Load() == pipeline.GoroutineID() {
		panic(selfFeedPanic)
	}
	// About to park on a full queue: wake the ticket waiters first, so a
	// dispatcher waiting for its publication turn re-runs its self-feed
	// check against the now-full queue (it could only drain this queue by
	// giving up that wait, which it never will — it must panic instead).
	e.pubMu.Lock()
	e.pubCond.Broadcast()
	e.pubMu.Unlock()
	return sub.q.Put(ev, false)
}

// selfFeedLocked reports whether the calling goroutine is the dispatcher of
// a lossless subscriber whose queue is currently full — in which case
// waiting for a publication turn can never end: a predecessor publisher
// must enqueue to every subscriber before finishing, so with this queue
// full and its only drainer here waiting, the predecessor can never finish.
// Caller holds pubMu (lock order: pubMu → subMu → queue mutex).
func (e *Engine) selfFeedLocked() bool {
	gid := pipeline.GoroutineID()
	for _, sub := range e.subscribers() {
		if sub.q != nil && !sub.dropOld && sub.gid.Load() == gid && sub.q.Full() {
			return true
		}
	}
	return false
}

// Subscribe registers fn to receive cluster-evolution events (merges,
// splits, core/noise transitions, ...) and returns a cancel function.
//
// Delivery is asynchronous: events are queued at commit time and fn runs on
// a dispatcher goroutine owned by this subscription, so a slow callback
// never executes on an updater's critical path. Per subscription, events
// arrive in commit order, and events produced by one update are delivered
// after that update commits. What happens when fn falls behind by more than
// the queue capacity is chosen by SubscribeOverflow. Use Sync to wait for
// everything already committed to be delivered, and cancel (or Engine.Close)
// to release the subscription's goroutine and buffer when done with it.
//
// On an Engine with thread safety off there is no dispatcher: events are
// delivered synchronously on the updater's goroutine (the options are
// ignored), so the Engine stays confined to one goroutine as
// WithThreadSafety(false) requires. Synchronous delivery is depth-first: a
// callback's own nested updates deliver their events immediately, so with
// several subscribers a nested commit's events can reach another subscriber
// before the outer commit's — ordering follows call nesting there, not the
// global commit sequence.
//
// fn may query the Engine freely (ClusterOf, Snapshot, GroupBy, ...). fn
// may also perform updates — but only on a DropOldest subscription: under
// BlockSubscriber a re-entrant update whose events hit the subscription's
// own full queue is an unresolvable self-wait, which the Engine turns into
// a panic (see OverflowPolicy). A backend without event support
// (some Wrap targets) never emits. The cancel function is idempotent; it
// stops delivery, discards this subscription's undelivered events, and does
// not wait for an in-flight callback (call Sync first for a clean drain).
func (e *Engine) Subscribe(fn func(Event), opts ...SubscribeOption) (cancel func()) {
	if e.ext == nil && e.sh == nil {
		return func() {}
	}
	st := subSettings{buffer: DefaultEventBuffer, overflow: BlockSubscriber}
	for _, opt := range opts {
		opt(&st)
	}
	sub := &subscriber{
		fn:      fn,
		dropOld: st.overflow == DropOldest,
	}
	if e.threadSafe {
		sub.q = pipeline.NewQueue[Event](st.buffer)
	}
	e.subMu.Lock()
	id := e.nextSub
	e.nextSub++
	e.subs[id] = sub
	e.subMu.Unlock()
	if sub.q != nil {
		go sub.run()
	}
	e.syncEventFunc()
	return func() {
		e.subMu.Lock()
		_, present := e.subs[id]
		delete(e.subs, id)
		e.subMu.Unlock()
		if present {
			if sub.q != nil {
				sub.q.Close()
			}
			e.syncEventFunc()
		}
	}
}

// Close cancels every active subscription (dispatcher goroutines stop and
// undelivered events are discarded) and, on an Engine with a write-ahead log,
// flushes and fsyncs the log's tail and closes it — after Close returns, every
// previously committed update is durable, and further updates fail with the
// log's ErrClosed. When checkpoints are enabled, Close also seals the log with
// a final checkpoint, so a clean shutdown reopens with the exact cluster-id
// assignment it closed with (a crash preserves memberships and handles
// exactly, and ids as of the last checkpoint). The Engine otherwise stays usable: queries keep working,
// and on an Engine without a WAL updates and new subscriptions do too. Close
// is idempotent and safe to call concurrently with updates. Call it before
// dropping an Engine: subscriptions otherwise pin their dispatcher goroutines
// and buffers, and a WAL tail under group commit may not be on disk yet.
func (e *Engine) Close() error {
	e.subMu.Lock()
	subs := make([]*subscriber, 0, len(e.subs))
	for _, sub := range e.subs {
		subs = append(subs, sub)
	}
	clear(e.subs)
	e.subMu.Unlock()
	for _, sub := range subs {
		if sub.q != nil {
			sub.q.Close()
		}
	}
	if len(subs) > 0 {
		e.syncEventFunc()
	}
	if e.sh != nil {
		// Drain staged hotspot deltas before the log seals: every acked
		// insert gets its reconcile commit (and WAL record) now, so a clean
		// shutdown loses nothing.
		e.sh.drainStaged()
	}
	return e.wal.closeWAL(e)
}

// deliverSync delivers evs synchronously on the caller's goroutine — the
// delivery mode of engines with thread safety off.
func (e *Engine) deliverSync(evs []Event) {
	for _, sub := range e.subscribers() {
		for _, ev := range evs {
			sub.fn(ev)
		}
	}
}

// syncEventFunc reconciles the backend's event sink with the current
// subscriber count: collection is enabled lazily so an Engine with no
// subscribers pays nothing for the event machinery. It re-reads the count
// under the write lock, so racing Subscribe/cancel pairs always converge on
// the state matching the surviving registrations (whichever reconciliation
// runs last sees every completed membership change).
func (e *Engine) syncEventFunc() {
	if e.sh != nil {
		e.sh.syncEvents()
		return
	}
	e.lock()
	e.subMu.Lock()
	want := len(e.subs) > 0
	e.subMu.Unlock()
	e.evsOn = want
	if !want {
		e.pending = nil
	}
	// With a WAL the sink is permanent (installed by attachWAL; it feeds the
	// delta checkpoints' merge ledger) and gates publication on evsOn itself;
	// only the no-WAL engine installs and removes the sink lazily so a
	// subscriber-less engine pays nothing for the event machinery.
	if e.wal == nil {
		if want {
			e.ext.SetEventFunc(func(ev Event) { e.pending = append(e.pending, e.mapEvent(ev)) })
		} else {
			e.ext.SetEventFunc(nil)
		}
	}
	e.unlock()
}

// publishOrdered enqueues evs to every current subscriber, admitting
// publishers strictly in ticket order. The enqueue phase holds no engine
// lock, so a publisher blocked on a full BlockSubscriber queue stalls later
// publications (they committed after it, so they must wait anyway) but
// never stalls queries — the subscriber's callback can always drain.
func (e *Engine) publishOrdered(ticket uint64, evs []Event) {
	e.pubMu.Lock()
	for e.pubNext != ticket {
		// Re-checked on every wake: blocked publishers broadcast pubCond
		// when they park on a full queue, so a dispatcher waiting here
		// fails fast the moment its own queue becomes the blocker.
		if e.selfFeedLocked() {
			e.pubMu.Unlock()
			panic(selfFeedPanic)
		}
		e.pubCond.Wait()
	}
	e.pubMu.Unlock()
	for _, sub := range e.subscribers() {
		for _, ev := range evs {
			if !e.enqueue(sub, ev) {
				break // canceled mid-publish
			}
		}
	}
	e.pubMu.Lock()
	e.pubNext++
	e.pubCond.Broadcast()
	e.pubMu.Unlock()
}

// subscribers returns the current subscribers in subscription order.
func (e *Engine) subscribers() []*subscriber {
	e.subMu.Lock()
	keys := make([]int, 0, len(e.subs))
	for k := range e.subs {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]*subscriber, len(keys))
	for i, k := range keys {
		out[i] = e.subs[k]
	}
	e.subMu.Unlock()
	return out
}

// Sync blocks until every event produced by updates that committed before
// the call has been delivered to (or, under DropOldest, dropped by) every
// current subscriber — a barrier between the async event stream and the
// caller. Events from updates racing with Sync may or may not be covered,
// and Sync stays live under a sustained update stream: it waits for a drain
// point, not for the queues to be empty. Sync must not be called from
// inside a subscriber callback.
func (e *Engine) Sync() {
	if e.sh != nil {
		// Sync is a hotspot join trigger: staged inserts reconcile (and
		// publish their events) before the delivery barrier is measured.
		// The barrier join waits out an in-flight fold — an advisory join
		// could return while deltas staged before this call are still
		// pending, because the fold snapshotted its stripes before them.
		e.sh.joinAllWait(joinSync)
	}
	// Every update that committed before this point took its publication
	// ticket inside its critical section; wait for all issued tickets to
	// finish enqueueing, then for each subscriber to settle everything
	// enqueued up to that instant.
	release := e.rqlock()
	horizon := e.pubTicket
	release()
	e.pubMu.Lock()
	for e.pubNext < horizon {
		e.pubCond.Wait()
	}
	e.pubMu.Unlock()
	for _, sub := range e.subscribers() {
		if sub.q != nil {
			sub.q.WaitHandled(sub.q.Barrier())
		}
	}
}
