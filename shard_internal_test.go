package dyndbscan

import (
	"math/rand"
	"testing"

	"dyndbscan/internal/grid"
)

// oracleShards is the brute-force routing oracle: the shards that must hold
// a copy of a cell in column c0 are the owner of c0's stripe plus the owner
// of every stripe whose column interval [t·W, t·W+W-1] intersects the band
// [c0-band, c0+band] — enumerated exhaustively, owner first, in first-seen
// order of increasing stripe distance like shardsOf's walk.
func oracleShards(ss *shardSet, c0 int64) []int32 {
	t := floorDiv(c0, ss.stripeCells)
	out := []int32{ss.shardOfStripe(t)}
	add := func(u int64) {
		// Does stripe u own any column within the band around c0?
		lo, hi := u*ss.stripeCells, u*ss.stripeCells+ss.stripeCells-1
		if hi < c0-ss.bandCells || lo > c0+ss.bandCells {
			return
		}
		s := ss.shardOfStripe(u)
		for _, have := range out {
			if have == s {
				return
			}
		}
		out = append(out, s)
	}
	// Generous enumeration window: the band can span at most
	// 2*band/W + 3 stripes around t.
	span := 2*ss.bandCells/ss.stripeCells + 3
	for d := int64(1); d <= span; d++ {
		add(t + d)
		add(t - d)
	}
	return out
}

func sameShardSets(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int32]bool, len(a))
	for _, s := range a {
		seen[s] = true
	}
	for _, s := range b {
		if !seen[s] {
			return false
		}
	}
	return true
}

// TestRoutingOracle property-tests the routing arithmetic — ownerOf,
// shardsOf, replicated, including negative coordinates through
// floorDiv/floorMod — against the brute-force oracle, over randomized
// stripe→shard assignment tables (the round-robin default plus migration
// overrides), stripe widths, and band widths.
func TestRoutingOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		shards := 2 + rng.Intn(7)
		stripe := int64(1 + rng.Intn(6))
		if rng.Intn(4) == 0 {
			stripe = 64
		}
		band := int64(1 + rng.Intn(7))
		ss := &shardSet{
			stripeCells: stripe,
			bandCells:   band,
			shards:      make([]*shard, shards),
			assign:      make(map[int64]int32),
		}
		// Random migration overrides over a window of stripes, including
		// no-op overrides (stripe assigned its round-robin default) and
		// adjacent stripes collapsing onto one shard.
		for u := int64(-30); u <= 30; u++ {
			if rng.Intn(3) == 0 {
				ss.assign[u] = int32(rng.Intn(shards))
			}
		}
		for c := int64(-220); c <= 220; c++ {
			var coord grid.Coord
			coord[0] = int32(c)
			wantOwner := ss.shardOfStripe(floorDiv(c, stripe))
			if got := ss.ownerOf(coord); got != wantOwner {
				t.Fatalf("trial %d (n=%d W=%d B=%d) c0=%d: ownerOf=%d, oracle %d",
					trial, shards, stripe, band, c, got, wantOwner)
			}
			want := oracleShards(ss, c)
			got := ss.shardsOf(coord)
			if got[0] != wantOwner {
				t.Fatalf("trial %d c0=%d: shardsOf[0]=%d, owner %d", trial, c, got[0], wantOwner)
			}
			if !sameShardSets(got, want) {
				t.Fatalf("trial %d (n=%d W=%d B=%d) c0=%d: shardsOf=%v, oracle %v",
					trial, shards, stripe, band, c, got, want)
			}
			if gotR, wantR := ss.replicated(coord), len(want) > 1; gotR != wantR {
				t.Fatalf("trial %d (n=%d W=%d B=%d) c0=%d: replicated=%v, shardsOf=%v",
					trial, shards, stripe, band, c, gotR, want)
			}
		}
	}
}

// TestReplicatedMatchesShardsOf pins the fast replicated() predicate to the
// materialized shard list on the round-robin default assignment (no
// overrides), across stripe/band/shard-count combinations.
func TestReplicatedMatchesShardsOf(t *testing.T) {
	for _, shards := range []int{2, 3, 4, 8} {
		for _, stripe := range []int64{1, 2, 3, 4, 64} {
			for _, band := range []int64{1, 2, 3, 7} {
				ss := &shardSet{stripeCells: stripe, bandCells: band, shards: make([]*shard, shards)}
				for c := int64(-500); c <= 500; c++ {
					var coord grid.Coord
					coord[0] = int32(c)
					want := len(ss.shardsOf(coord)) > 1
					if got := ss.replicated(coord); got != want {
						t.Fatalf("shards=%d stripe=%d band=%d c0=%d: replicated=%v shardsOf=%v",
							shards, stripe, band, c, got, want)
					}
				}
			}
		}
	}
}
