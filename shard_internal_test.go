package dyndbscan

import (
	"testing"

	"dyndbscan/internal/grid"
)

func TestReplicatedMatchesShardsOf(t *testing.T) {
	for _, shards := range []int{2, 3, 4, 8} {
		for _, stripe := range []int64{1, 2, 3, 4, 64} {
			for _, band := range []int64{1, 2, 3, 7} {
				ss := &shardSet{stripeCells: stripe, bandCells: band, shards: make([]*shard, shards)}
				for c := int64(-500); c <= 500; c++ {
					var coord grid.Coord
					coord[0] = int32(c)
					want := len(ss.shardsOf(coord)) > 1
					if got := ss.replicated(coord); got != want {
						t.Fatalf("shards=%d stripe=%d band=%d c0=%d: replicated=%v shardsOf=%v",
							shards, stripe, band, c, got, want)
					}
				}
			}
		}
	}
}
